"""Tests of the multi-node cluster tier (:mod:`repro.cluster`).

Four guarantees anchor the cluster layer:

1. **Degenerate equivalence** — ``hosts=1`` is bitwise a plain
   :class:`~repro.service.GraphService`: same results, same
   :class:`~repro.service.ServiceStats`, same trace spans modulo the
   ``host0:`` track prefix.
2. **Router determinism** — consistent-hash assignment is seed-free and
   stable across processes, spill decisions under identical load are
   deterministic, and the decision procedure (affinity → spill →
   cluster rejection) is exactly the documented order.
3. **Bitwise serving** — per-query values on an N-host cluster equal
   solo ``system.run`` values; routing changes placement, never
   semantics.
4. **Failover** — a lost host's queued and suspended queries migrate to
   survivors over the network fabric and complete bitwise; with no
   survivor they fail typed, never silently.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterService, ConsistentHashRing, Router, stable_hash
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_graph
from repro.obs import validate_chrome_trace
from repro.service import (
    GraphService,
    QueryRequest,
    ReplayHarness,
    RequestStatus,
    ServiceConfig,
    timed_mixed_trace,
)
from repro.sim.config import HardwareConfig


@pytest.fixture(scope="module")
def graph():
    """A weighted RMAT graph (also serves the unweighted algorithms)."""
    return rmat_graph(400, 3200, seed=11, weighted=True, name="cluster-rmat")


@pytest.fixture(scope="module")
def symmetric_graph(graph):
    sym = graph.symmetrize()
    return CSRGraph(sym.row_offset, sym.column_index, sym.edge_value, name="cluster-sym")


@pytest.fixture(scope="module")
def hardware(graph):
    """Half the edge data fits on device: transfers are priced."""
    return HardwareConfig(
        gpu_memory_bytes=graph.edge_data_bytes // 2, pcie_bandwidth=1e9
    )


def _mixed_requests():
    return [
        QueryRequest(algorithm="pagerank", priority="bulk", label="analytic"),
        QueryRequest(algorithm="bfs", source=0, priority="interactive", label="lookup"),
        QueryRequest(algorithm="sssp", source=3, priority="interactive", label="route"),
    ]


def _service(graph, hardware, **kwargs):
    return GraphService(
        ServiceConfig(system="hytgraph", **kwargs), graph=graph, hardware=hardware
    )


def _cluster(graph, hardware, hosts=2, network="tcp", **service_kwargs):
    config = ClusterConfig(
        hosts=hosts,
        network=network,
        service=ServiceConfig(system="hytgraph", **service_kwargs),
    )
    return ClusterService(config, graph=graph, hardware=hardware)


# ----------------------------------------------------------------------
# (1) hosts=1 is bitwise-degenerate to GraphService
# ----------------------------------------------------------------------


class TestDegenerateSingleHost:
    def _serve_both(self, graph, hardware, **kwargs):
        single = _service(graph, hardware, **kwargs)
        cluster = _cluster(graph, hardware, hosts=1, **kwargs)
        single_handles = single.submit_many(_mixed_requests())
        cluster_handles = cluster.submit_many(_mixed_requests())
        single.drain()
        cluster.drain()
        return single, cluster, single_handles, cluster_handles

    def test_results_bitwise_equal(self, graph, hardware):
        _, _, singles, clustered = self._serve_both(graph, hardware)
        for alone, routed in zip(singles, clustered):
            assert routed.status is RequestStatus.DONE
            assert routed.request_id == alone.request_id
            assert routed.latency_s == alone.latency_s
            assert np.array_equal(
                np.asarray(routed.result().values), np.asarray(alone.result().values)
            )

    def test_stats_identical(self, graph, hardware):
        single, cluster, _, _ = self._serve_both(graph, hardware)
        assert cluster.stats().as_dict() == single.stats().as_dict()

    def test_trace_spans_equal_modulo_host_prefix(self, graph, hardware):
        single, cluster, _, _ = self._serve_both(graph, hardware, tracing=True)

        def shape(span, track):
            return (span.category, span.name, track, span.start_s, span.end_s,
                    tuple(sorted(span.attrs.items())))

        lone = [shape(span, span.track) for span in single.tracer.spans()]
        merged = []
        for span in cluster.trace_spans():
            track = span.track
            if track.startswith("host0:"):
                track = track[len("host0:"):]
            merged.append(shape(span, track))
        assert merged == lone

    def test_routing_probes_are_pure(self, graph, hardware):
        # A tight budget exercises the saturated/refuses probes; they
        # must not reserve bytes, so the lone replica's admission
        # decisions match the single service byte for byte.
        single, cluster, singles, clustered = self._serve_both(
            graph, hardware, admission_budget_bytes=graph.edge_data_bytes // 4
        )
        assert [h.status for h in clustered] == [h.status for h in singles]
        assert cluster.stats().as_dict() == single.stats().as_dict()


# ----------------------------------------------------------------------
# (2) router determinism
# ----------------------------------------------------------------------


class TestRouterDeterminism:
    def test_stable_hash_is_pinned(self):
        # blake2b over the key bytes: seed-free, PYTHONHASHSEED-
        # independent, identical on every platform.  These constants are
        # the contract.
        assert stable_hash("alpha") == 5982700193828047002
        assert stable_hash("lookup") == 7379961564278518687
        assert stable_hash("q0") == 2195274083305894413

    def test_affinity_stable_across_instances(self):
        first, second = ConsistentHashRing(4), ConsistentHashRing(4)
        alive = [0, 1, 2, 3]
        keys = ["q%d" % i for i in range(200)]
        assert [first.affine_host(k, alive) for k in keys] == [
            second.affine_host(k, alive) for k in keys
        ]
        assert first.affine_host("alpha", alive) == 3
        assert first.affine_host("lookup", alive) == 0
        assert first.affine_host("analytic", alive) == 1

    def test_host_loss_only_moves_the_lost_hosts_keys(self):
        ring = ConsistentHashRing(4)
        keys = ["q%d" % i for i in range(200)]
        before = {k: ring.affine_host(k, [0, 1, 2, 3]) for k in keys}
        after = {k: ring.affine_host(k, [0, 1, 3]) for k in keys}
        for key in keys:
            if before[key] != 2:
                assert after[key] == before[key]
            else:
                assert after[key] != 2

    def test_ring_validation(self):
        with pytest.raises(ValueError, match="hosts"):
            ConsistentHashRing(0)
        with pytest.raises(ValueError, match="vnodes"):
            ConsistentHashRing(2, vnodes=0)
        with pytest.raises(ValueError, match="alive"):
            ConsistentHashRing(2).affine_host("k", [])

    def test_route_decision_order(self):
        alive = [0, 1, 2, 3]
        load_order = [2, 1, 3, 0]
        router = Router(4)
        affine = router.ring.affine_host("alpha", alive)  # host 3

        # 1. affine not saturated -> affinity.
        host, outcome = router.route(
            "alpha", alive, load_order, lambda h: False, lambda h: False
        )
        assert (host, outcome) == (affine, "affinity")
        # 2. affine saturated -> least-loaded non-saturated host.
        host, outcome = router.route(
            "alpha", alive, load_order, lambda h: h == affine, lambda h: False
        )
        assert (host, outcome) == (2, "spill")
        # 3. everything saturated but the affine host still queues.
        host, outcome = router.route(
            "alpha", alive, load_order, lambda h: True, lambda h: False
        )
        assert (host, outcome) == (affine, "affinity")
        # 4. affine refuses -> first non-refusing host in load order.
        host, outcome = router.route(
            "alpha", alive, load_order, lambda h: True, lambda h: h == affine
        )
        assert (host, outcome) == (2, "spill")
        # 5. every host refuses -> cluster rejection on the affine host.
        host, outcome = router.route(
            "alpha", alive, load_order, lambda h: True, lambda h: True
        )
        assert (host, outcome) == (affine, "reject")
        assert router.counters() == {
            "affinity_hits": 2, "spills": 2, "rejections": 1, "failovers": 0,
        }

    def test_identical_streams_route_identically(self, graph, hardware):
        def serve():
            cluster = _cluster(graph, hardware, hosts=3)
            handles = cluster.submit_many(_mixed_requests() * 3)
            cluster.drain()
            return (
                [h.request_id for h in handles],
                [h.status for h in handles],
                cluster.router.counters(),
                [len(r._handles) for r in cluster.replicas],
            )

        assert serve() == serve()


# ----------------------------------------------------------------------
# (3) multi-host serving stays bitwise; spills and rejections
# ----------------------------------------------------------------------


class TestClusterServing:
    def test_values_bitwise_equal_solo_runs(self, graph, hardware):
        cluster = _cluster(graph, hardware, hosts=2)
        handles = cluster.submit_many(_mixed_requests())
        cluster.drain()
        for handle in handles:
            assert handle.status is RequestStatus.DONE
            solo = _service(graph, hardware).run(handle.request)
            assert np.array_equal(
                np.asarray(handle.result().values), np.asarray(solo.values)
            )
        counters = cluster.router.counters()
        assert counters["affinity_hits"] + counters["spills"] == len(handles)

    def test_request_ids_cluster_global(self, graph, hardware):
        cluster = _cluster(graph, hardware, hosts=3)
        handles = cluster.submit_many(_mixed_requests() * 2)
        assert [h.request_id for h in handles] == list(range(len(handles)))

    def test_saturated_affine_spills_to_least_loaded(self, graph, hardware):
        # Two same-label requests hash to one host; a budget sized for
        # one of them saturates the affine host after the first, so the
        # second spills instead of queueing behind it.
        probe = _service(graph, hardware)
        estimate = probe.admission.estimate_request_bytes(
            *probe.submit(QueryRequest(algorithm="pagerank", priority="bulk"))._query
        )
        cluster = _cluster(
            graph, hardware, hosts=2,
            admission_budget_bytes=int(estimate * 1.5),
        )
        first = cluster.submit(QueryRequest(algorithm="pagerank", label="tenant"))
        second = cluster.submit(QueryRequest(algorithm="pagerank", label="tenant"))
        assert cluster.router.counters()["spills"] == 1
        hosts_of = [
            host
            for handle in (first, second)
            for host, replica in enumerate(cluster.replicas)
            if handle in replica._handles
        ]
        assert sorted(hosts_of) == [0, 1]
        cluster.drain()
        assert first.status is RequestStatus.DONE
        assert second.status is RequestStatus.DONE

    def test_cluster_rejects_only_when_every_host_refuses(self, graph, hardware):
        cluster = _cluster(
            graph, hardware, hosts=2, admission_budget_bytes=1,
            admission_policy="reject",
        )
        handle = cluster.submit(QueryRequest(algorithm="pagerank", label="big"))
        assert handle.status is RequestStatus.REJECTED
        assert cluster.router.counters()["rejections"] == 1
        assert cluster.stats().rejected == 1

    def test_merged_trace_is_host_qualified_and_valid(self, graph, hardware, tmp_path):
        cluster = _cluster(graph, hardware, hosts=2, tracing=True)
        cluster.submit_many(_mixed_requests() * 2)
        cluster.drain()
        spans = cluster.trace_spans()
        assert [span.span_id for span in spans] == list(range(len(spans)))
        roots = {span.track.split(":", 1)[0] for span in spans}
        assert "query" in roots
        assert roots - {"query"} <= {"host0", "host1"}
        assert all(
            span.track.startswith(("query:", "host0:", "host1:")) for span in spans
        )
        path = tmp_path / "cluster_trace.json"
        cluster.export_trace(path)
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_replay_harness_drives_a_cluster(self, graph, hardware):
        cluster = _cluster(graph, hardware, hosts=2)
        harness = ReplayHarness(cluster, lookahead=64, verify_sample=5, seed=3)
        report = harness.replay(timed_mixed_trace(graph, 200, 2000.0, seed=3))
        assert report.completed == 200
        assert report.verified_bitwise is True
        # The harness harvests as it streams; the routed totals live in
        # its report, the router keeps the placement counters.
        counters = cluster.router.counters()
        assert counters["affinity_hits"] + counters["spills"] == 200


# ----------------------------------------------------------------------
# (4) host loss and failover
# ----------------------------------------------------------------------


def _loss_requests(algorithm):
    source = None if algorithm in ("cc", "pagerank") else 0
    return [
        QueryRequest(algorithm=algorithm, source=source, label="s%d" % index)
        for index in range(8)
    ]


class TestHostLoss:
    @pytest.mark.parametrize("algorithm", ["bfs", "sssp", "cc"])
    def test_failover_completes_bitwise(self, graph, symmetric_graph, hardware, algorithm):
        served_graph = symmetric_graph if algorithm == "cc" else graph
        served_hardware = HardwareConfig(
            gpu_memory_bytes=served_graph.edge_data_bytes // 2, pcie_bandwidth=1e9
        )
        # A budget that admits one request per wave keeps the rest
        # queued past wave 1, so the host-loss there migrates real work.
        probe = _service(served_graph, served_hardware)
        estimate = probe.admission.estimate_request_bytes(
            *probe.submit(_loss_requests(algorithm)[0])._query
        )
        budget = int(estimate * 1.5)
        cluster = _cluster(
            served_graph, served_hardware, hosts=2,
            admission_budget_bytes=budget, faults="host-loss@1:host=1",
        )
        handles = cluster.submit_many(_loss_requests(algorithm))
        cluster.drain()

        assert cluster.alive_hosts() == [0]
        assert cluster.router.counters()["failovers"] > 0
        assert cluster.events and cluster.events[0]["kind"] == "host-loss"
        assert cluster.events[0]["migrated"] == cluster.router.failovers
        reference = _service(
            served_graph, served_hardware, admission_budget_bytes=budget
        )
        expected = {
            request.label: reference.run(request) for request in _loss_requests(algorithm)
        }
        for handle in handles:
            assert handle.status is RequestStatus.DONE, handle
            assert np.array_equal(
                np.asarray(handle.result().values),
                np.asarray(expected[handle.request.label].values),
            )

    def test_shipping_is_billed_on_the_fabric(self, graph, hardware):
        def run(network):
            cluster = _cluster(
                graph, hardware, hosts=2, network=network,
                admission_budget_bytes=graph.edge_data_bytes // 4,
                faults="host-loss@1:host=1",
            )
            cluster.submit_many(_loss_requests("sssp"))
            cluster.drain()
            return cluster

        tcp, rdma = run("tcp"), run("rdma")
        assert tcp.router.failovers == rdma.router.failovers > 0
        assert tcp.shipped_bytes == rdma.shipped_bytes
        # Same bytes, faster fabric: rdma ships strictly quicker.
        assert rdma.ship_time_s < tcp.ship_time_s
        assert tcp.stats().completed == rdma.stats().completed == 8

    def test_losing_the_last_host_fails_queries_typed(self, graph, hardware):
        cluster = _cluster(
            graph, hardware, hosts=1,
            admission_budget_bytes=graph.edge_data_bytes // 4,
            faults="host-loss@1:host=0",
        )
        handles = cluster.submit_many(_loss_requests("bfs"))
        cluster.drain()
        assert cluster.alive_hosts() == []
        failed = [h for h in handles if h.status is RequestStatus.FAILED]
        assert failed
        assert all("no surviving replica" in h.fault_cause for h in failed)
        assert cluster.events[0].get("failed") == len(failed)

    def test_duplicate_loss_is_skipped_not_reapplied(self, graph, hardware):
        cluster = _cluster(
            graph, hardware, hosts=2,
            admission_budget_bytes=graph.edge_data_bytes // 4,
            faults="host-loss@1:host=1;host-loss@2:host=1",
        )
        cluster.submit_many(_loss_requests("bfs"))
        cluster.drain()
        assert [event.get("skipped") for event in cluster.events] == [
            None, "host already lost",
        ]

    def test_migrated_queries_trace_their_shipment(self, graph, hardware):
        cluster = _cluster(
            graph, hardware, hosts=2, tracing=True,
            admission_budget_bytes=graph.edge_data_bytes // 4,
            faults="host-loss@1:host=1",
        )
        handles = cluster.submit_many(_loss_requests("sssp"))
        cluster.drain()
        assert all(h.status is RequestStatus.DONE for h in handles)
        ships = [
            span for span in cluster.trace_spans() if span.name == "checkpoint-ship"
        ]
        assert ships
        query_side = [s for s in ships if s.track.startswith("query:")]
        net_side = [s for s in ships if s.track == "host0:net"]
        assert len(query_side) == len(net_side) == cluster.router.failovers
        assert all(s.attrs["src_host"] == 1 and s.attrs["dst_host"] == 0 for s in query_side)
        # The receiver's NIC is serialized: its occupancy spans never overlap.
        net_side.sort(key=lambda s: s.start_s)
        for earlier, later in zip(net_side, net_side[1:]):
            assert later.start_s >= earlier.end_s


# ----------------------------------------------------------------------
# (5) configuration and observability
# ----------------------------------------------------------------------


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="hosts"):
            ClusterConfig(hosts=0)
        with pytest.raises(ValueError, match="gpus_per_host"):
            ClusterConfig(gpus_per_host=0)
        with pytest.raises(KeyError, match="unknown network preset"):
            ClusterConfig(network="carrier-pigeon")
        with pytest.raises(ValueError, match="ServiceConfig"):
            ClusterConfig(service="not-a-config")

    def test_replica_config_strips_host_loss_and_sets_devices(self):
        config = ClusterConfig(
            hosts=2, gpus_per_host=4,
            service=ServiceConfig(
                system="hytgraph", faults="host-loss@1:host=1;device-loss@2:device=0"
            ),
        )
        assert len(config.host_loss_specs()) == 1
        replica = config.replica_config()
        assert replica.devices == 4
        assert [spec.kind.value for spec in replica.faults.specs] == ["device-loss"]

    def test_network_presets_coerced(self):
        config = ClusterConfig(network="rdma")
        assert config.network.kind == "rdma"
        assert config.topology.total_gpus == 1
        fast = ClusterConfig(hosts=2, network="tcp")
        assert fast.network.transfer_seconds(10**9) > config.network.transfer_seconds(10**9)

    def test_replica_count_must_match(self, graph, hardware):
        replica = _service(graph, hardware)
        with pytest.raises(ValueError, match="expected 2 replica"):
            ClusterService(ClusterConfig(hosts=2), replicas=[replica])


class TestClusterObservability:
    def test_metrics_carry_per_host_and_router_rows(self, graph, hardware):
        cluster = _cluster(graph, hardware, hosts=2)
        cluster.submit_many(_mixed_requests() * 2)
        cluster.drain()
        payload = cluster.observability()
        metrics = payload["metrics"]
        names = (
            set(metrics["counters"]) | set(metrics["gauges"]) | set(metrics["histograms"])
        )
        for host in (0, 1):
            assert "cluster.host%d.completed" % host in names
            assert "cluster.host%d.alive" % host in names
            assert "cluster.host%d.queries_per_second" % host in names
        for counter in ("affinity_hits", "spills", "rejections", "failovers"):
            assert "cluster.router.%s" % counter in names
        assert "cluster.network.shipped_bytes" in names
        assert "service.completed" in names
        view = payload["cluster"]
        assert view["hosts"] == 2 and view["hosts_alive"] == 2
        assert len(view["per_host"]) == 2
        assert sum(row["completed"] for row in view["per_host"]) == payload["completed"]

    def test_device_health_reports_lost_hosts(self, graph, hardware):
        cluster = _cluster(
            graph, hardware, hosts=2,
            admission_budget_bytes=graph.edge_data_bytes // 4,
            faults="host-loss@1:host=1",
        )
        cluster.submit_many(_loss_requests("bfs"))
        cluster.drain()
        health = cluster.device_health()
        assert health["hosts_alive"] == 1
        assert health["hosts_lost"] == [1]
        assert len(health["replicas"]) == 2


class TestClusterCLI:
    def test_serve_hosts_flag_reports_cluster(self, capsys, tmp_path):
        from repro.cli import main

        stats_path = tmp_path / "stats.json"
        code = main(
            [
                "serve", "--dataset", "SK", "--scale", "0.05",
                "--hosts", "2", "--network", "rdma",
                "--point-lookups", "2", "--analytical", "1",
                "--stats-json", str(stats_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "cluster: 2 host(s)" in output and "rdma" in output
        stats = json.loads(stats_path.read_text())
        assert stats["cluster"]["hosts"] == 2
        assert stats["cluster"]["network"]["kind"] == "rdma"
        assert len(stats["cluster"]["per_host"]) == 2

    def test_serve_rejects_bad_hosts(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--hosts"):
            main(["serve", "--dataset", "SK", "--scale", "0.05", "--hosts", "0"])
