"""Unit tests for the multi-stream scheduler (Section VI-B, Figure 6)."""

import pytest

from repro.sim.streams import StreamScheduler, StreamTask


def make_tasks(count, cpu=0.0, transfer=1.0, kernel=1.0, overlapped=False):
    return [
        StreamTask(
            name="t%d" % index,
            engine="ExpTM-F",
            cpu_time=cpu,
            transfer_time=transfer,
            kernel_time=kernel,
            overlapped_transfer=overlapped,
        )
        for index in range(count)
    ]


class TestScheduling:
    def test_empty_schedule(self, config):
        timeline = StreamScheduler(config).schedule([])
        assert timeline.makespan == 0.0

    def test_single_task_serial_stages(self, config):
        scheduler = StreamScheduler(config)
        task = StreamTask("t", "ExpTM-C", cpu_time=1.0, transfer_time=2.0, kernel_time=3.0)
        timeline = scheduler.schedule([task])
        assert timeline.makespan == pytest.approx(6.0)
        entry = timeline.entries[0]
        assert entry.time_on("cpu") == pytest.approx(1.0)
        assert entry.time_on("pcie") == pytest.approx(2.0)
        assert entry.time_on("gpu") == pytest.approx(3.0)

    def test_multi_stream_overlaps_transfer_and_compute(self, config):
        scheduler = StreamScheduler(config)
        tasks = make_tasks(4, transfer=1.0, kernel=1.0)
        timeline = scheduler.schedule(tasks, num_streams=4)
        serial = scheduler.serial_time(tasks)
        # With pipelining across streams the makespan must beat fully
        # serial execution but cannot beat the busiest single resource.
        assert timeline.makespan < serial
        assert timeline.makespan >= 4 * 1.0

    def test_single_stream_is_serial(self, config):
        scheduler = StreamScheduler(config)
        tasks = make_tasks(3, transfer=1.0, kernel=2.0)
        timeline = scheduler.schedule(tasks, num_streams=1)
        assert timeline.makespan == pytest.approx(scheduler.serial_time(tasks))

    def test_overlapped_transfer_uses_max(self, config):
        scheduler = StreamScheduler(config)
        task = StreamTask("zc", "ImpTM-ZC", transfer_time=2.0, kernel_time=5.0, overlapped_transfer=True)
        timeline = scheduler.schedule([task])
        assert timeline.makespan == pytest.approx(5.0)

    def test_priority_order_respected(self, config):
        scheduler = StreamScheduler(config)
        first = StreamTask("low-priority", "ExpTM-F", transfer_time=1.0, kernel_time=1.0, priority=5.0)
        second = StreamTask("high-priority", "ExpTM-F", transfer_time=1.0, kernel_time=1.0, priority=1.0)
        timeline = scheduler.schedule([first, second], num_streams=1)
        order = [entry.name for entry in sorted(timeline.entries, key=lambda entry: entry.start)]
        assert order == ["high-priority", "low-priority"]

    def test_deterministic(self, config):
        scheduler = StreamScheduler(config)
        tasks = make_tasks(6, transfer=0.5, kernel=1.5)
        first = scheduler.schedule(tasks)
        second = scheduler.schedule(tasks)
        assert first.makespan == second.makespan

    def test_invalid_stream_count(self, config):
        with pytest.raises(ValueError):
            StreamScheduler(config).schedule(make_tasks(1), num_streams=0)

    def test_cpu_compaction_overlaps_other_streams(self, config):
        # A compaction task's CPU stage should overlap another stream's
        # transfer (Figure 6): makespan < serial sum.
        scheduler = StreamScheduler(config)
        compaction = StreamTask("c", "ExpTM-C", cpu_time=3.0, transfer_time=1.0, kernel_time=1.0)
        filter_task = StreamTask("f", "ExpTM-F", transfer_time=3.0, kernel_time=1.0)
        timeline = scheduler.schedule([filter_task, compaction], num_streams=2)
        assert timeline.makespan < scheduler.serial_time([compaction, filter_task])


class TestTimelineQueries:
    def test_busy_time_sums_over_tasks(self, config):
        scheduler = StreamScheduler(config)
        tasks = make_tasks(3, transfer=1.0, kernel=2.0)
        timeline = scheduler.schedule(tasks)
        assert timeline.busy_time("pcie") == pytest.approx(3.0)
        assert timeline.busy_time("gpu") == pytest.approx(6.0)
        assert timeline.busy_time("cpu") == 0.0

    def test_per_engine_time(self, config):
        scheduler = StreamScheduler(config)
        tasks = [
            StreamTask("a", "ExpTM-F", transfer_time=1.0, kernel_time=1.0),
            StreamTask("b", "ImpTM-ZC", transfer_time=1.0, kernel_time=1.0, overlapped_transfer=True),
        ]
        timeline = scheduler.schedule(tasks)
        per_engine = timeline.per_engine_time()
        assert set(per_engine) == {"ExpTM-F", "ImpTM-ZC"}
        assert per_engine["ExpTM-F"] > 0

    def test_serial_time_property(self, config):
        task = StreamTask("t", "ImpTM-ZC", cpu_time=1.0, transfer_time=4.0, kernel_time=2.0, overlapped_transfer=True)
        assert task.serial_time == pytest.approx(5.0)
        explicit = StreamTask("t", "ExpTM-C", cpu_time=1.0, transfer_time=4.0, kernel_time=2.0)
        assert explicit.serial_time == pytest.approx(7.0)
