"""Unit tests for the active-vertex frontier."""

import numpy as np
import pytest

from repro.graph.frontier import Frontier


class TestConstruction:
    def test_empty(self):
        frontier = Frontier(10)
        assert frontier.count == 0
        assert frontier.is_empty
        assert frontier.num_vertices == 10

    def test_from_vertex_list(self):
        frontier = Frontier(10, [1, 3, 5])
        assert frontier.count == 3
        assert list(frontier.active_vertices()) == [1, 3, 5]

    def test_from_boolean_mask(self):
        mask = np.zeros(6, dtype=bool)
        mask[2] = True
        frontier = Frontier(6, mask)
        assert frontier.count == 1
        assert frontier.is_active(2)

    def test_boolean_mask_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            Frontier(6, np.zeros(4, dtype=bool))

    def test_all_active(self):
        frontier = Frontier.all_active(7)
        assert frontier.count == 7

    def test_single(self):
        frontier = Frontier.single(9, 4)
        assert frontier.count == 1
        assert 4 in frontier

    def test_from_mask_copies(self):
        mask = np.zeros(4, dtype=bool)
        frontier = Frontier.from_mask(mask)
        mask[0] = True
        assert frontier.count == 0


class TestQueries:
    def test_active_edges(self):
        frontier = Frontier(4, [0, 2])
        out_degrees = np.array([5, 1, 7, 2])
        assert frontier.active_edges(out_degrees) == 12

    def test_len_and_contains(self):
        frontier = Frontier(5, [1, 2])
        assert len(frontier) == 2
        assert 1 in frontier
        assert 0 not in frontier


class TestMutation:
    def test_activate_deactivate(self):
        frontier = Frontier(8)
        frontier.activate([1, 2, 3])
        assert frontier.count == 3
        frontier.deactivate([2])
        assert frontier.count == 2
        assert not frontier.is_active(2)

    def test_activate_with_array(self):
        frontier = Frontier(8)
        frontier.activate(np.array([6, 7]))
        assert frontier.count == 2

    def test_activate_empty_is_noop(self):
        frontier = Frontier(8)
        frontier.activate([])
        assert frontier.count == 0

    def test_clear(self):
        frontier = Frontier.all_active(5)
        frontier.clear()
        assert frontier.is_empty

    def test_clear_range(self):
        frontier = Frontier.all_active(10)
        frontier.clear_range(2, 5)
        assert frontier.count == 7
        assert not frontier.is_active(3)
        assert frontier.is_active(5)


class TestSetAlgebra:
    def test_union_intersection_difference(self):
        left = Frontier(6, [0, 1, 2])
        right = Frontier(6, [2, 3])
        assert set(left.union(right).active_vertices()) == {0, 1, 2, 3}
        assert set(left.intersection(right).active_vertices()) == {2}
        assert set(left.difference(right).active_vertices()) == {0, 1}

    def test_operands_unchanged(self):
        left = Frontier(6, [0, 1])
        right = Frontier(6, [1, 2])
        left.union(right)
        assert left.count == 2
        assert right.count == 2

    def test_incompatible_sizes_rejected(self):
        with pytest.raises(ValueError):
            Frontier(4).union(Frontier(5))

    def test_copy_and_equality(self):
        frontier = Frontier(6, [1, 4])
        duplicate = frontier.copy()
        assert duplicate == frontier
        duplicate.activate([2])
        assert duplicate != frontier

    def test_equality_with_other_type(self):
        assert Frontier(3) != "frontier"
