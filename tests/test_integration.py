"""End-to-end integration tests reproducing the paper's qualitative claims.

These are the behavioural counterparts of the benchmark suite: they assert
the *shape* results (who transfers more, which engine is preferred when)
on small graphs so they run in seconds.
"""

import numpy as np
import pytest

from repro.algorithms import DeltaPageRank, SSSP, reference
from repro.bench.workloads import build_workload
from repro.core.engine import HyTGraphEngine, HyTGraphOptions
from repro.graph.generators import power_law_graph, random_weights
from repro.transfer.base import EngineKind

from tests.conftest import assert_distances_equal


@pytest.fixture(scope="module")
def sk_sssp_workload():
    return build_workload("SK", "sssp", scale=0.35)


@pytest.fixture(scope="module")
def sk_pr_workload():
    return build_workload("SK", "pagerank", scale=0.35)


ALL_SYSTEMS = ["exptm-f", "subway", "emogi", "imptm-um", "grus", "galois", "hytgraph"]


class TestAllSystemsAgree:
    def test_sssp_answers_identical(self, sk_sssp_workload):
        workload = sk_sssp_workload
        expected = reference.sssp_distances(workload.graph, workload.source)
        for system_name in ALL_SYSTEMS:
            result = workload.run(system_name)
            assert_distances_equal(result.values, expected)

    def test_pagerank_answers_identical(self, sk_pr_workload):
        workload = sk_pr_workload
        expected = reference.pagerank_values(workload.graph)
        for system_name in ALL_SYSTEMS:
            result = workload.run(system_name)
            # The default Δ tolerance (1e-3 residual per vertex) leaves
            # every system within a fraction of a percent of the exact
            # fixed point; the exact leftover depends on processing order.
            np.testing.assert_allclose(result.values, expected, rtol=1e-2, atol=1e-3)


class TestTransferVolumeShape:
    """Table VI: ExpTM-F moves by far the most data; HyTGraph is competitive."""

    def test_exptm_filter_has_largest_volume(self, sk_sssp_workload):
        volumes = {name: sk_sssp_workload.run(name).total_transfer_bytes for name in ["exptm-f", "subway", "emogi", "hytgraph"]}
        assert volumes["exptm-f"] == max(volumes.values())

    def test_hytgraph_close_to_best_for_sssp(self, sk_sssp_workload):
        volumes = {name: sk_sssp_workload.run(name).total_transfer_bytes for name in ["subway", "emogi", "hytgraph"]}
        best = min(volumes.values())
        assert volumes["hytgraph"] <= 2.5 * best


class TestRuntimeShape:
    """Table V headline: HyTGraph beats Subway, EMOGI and the pure baselines."""

    def test_hytgraph_beats_subway_and_filter_on_sssp(self, sk_sssp_workload):
        times = {name: sk_sssp_workload.run(name).total_time for name in ["exptm-f", "subway", "hytgraph"]}
        assert times["hytgraph"] < times["subway"]
        assert times["hytgraph"] < times["exptm-f"]

    def test_gpu_systems_beat_cpu_baseline_on_pagerank(self, sk_pr_workload):
        times = {name: sk_pr_workload.run(name).total_time for name in ["galois", "hytgraph", "emogi"]}
        assert times["hytgraph"] < times["galois"]
        assert times["emogi"] < times["galois"]

    def test_um_wins_when_graph_fits_in_memory(self, sk_pr_workload):
        # Section VII-B2: on SK (fits in device memory) the UM-based
        # systems beat the transfer-centric ones for PageRank.
        times = {name: sk_pr_workload.run(name).total_time for name in ["imptm-um", "subway", "emogi"]}
        assert times["imptm-um"] < times["subway"]
        assert times["imptm-um"] < times["emogi"]

    def test_um_loses_when_memory_is_scarce(self):
        workload = build_workload("FK", "pagerank", scale=0.35)
        times = {name: workload.run(name).total_time for name in ["imptm-um", "hytgraph"]}
        assert times["hytgraph"] < times["imptm-um"]


class TestExecutionPathShape:
    """Figure 7: dense iterations prefer ExpTM-F, sparse ones ImpTM-ZC."""

    def test_pagerank_engine_mix_shifts_over_time(self):
        graph = power_law_graph(1500, 16.0, exponent=2.0, seed=31, name="mix")
        engine = HyTGraphEngine(graph, options=HyTGraphOptions(num_partitions=32))
        result = engine.run(DeltaPageRank())
        mix = result.engine_mix()
        assert len(mix) > 3
        early_filter = mix[0].get(EngineKind.EXP_FILTER.value, 0.0)
        late_zero_copy = mix[-1].get(EngineKind.IMP_ZERO_COPY.value, 0.0) + mix[-1].get(
            EngineKind.EXP_COMPACTION.value, 0.0
        )
        assert early_filter > 0.5
        assert late_zero_copy > 0.5

    def test_sssp_sparse_iterations_prefer_zero_copy(self):
        graph = power_law_graph(1500, 16.0, exponent=2.0, seed=33, name="mix")
        graph = graph.with_weights(random_weights(graph.num_edges, seed=34))
        engine = HyTGraphEngine(graph, options=HyTGraphOptions(num_partitions=32))
        result = engine.run(SSSP(), source=int(np.argmax(graph.out_degrees)))
        # The tail iterations have few, low-degree active vertices: the
        # selector should avoid whole-partition filter transfers there.
        last_mix = result.engine_mix()[-1]
        assert last_mix.get(EngineKind.IMP_ZERO_COPY.value, 0.0) + last_mix.get(
            EngineKind.EXP_COMPACTION.value, 0.0
        ) > 0.5


class TestAblationShape:
    """Figure 8: TC and CDS never hurt much and help accumulative workloads."""

    def test_contribution_scheduling_reduces_pagerank_work(self):
        graph = power_law_graph(1500, 16.0, exponent=2.0, seed=35, name="ablate")
        baseline = HyTGraphEngine(
            graph, options=HyTGraphOptions(num_partitions=24, contribution_scheduling=False)
        ).run(DeltaPageRank())
        with_cds = HyTGraphEngine(
            graph, options=HyTGraphOptions(num_partitions=24, contribution_scheduling=True)
        ).run(DeltaPageRank())
        assert with_cds.total_processed_edges <= baseline.total_processed_edges * 1.1
        assert with_cds.total_time <= baseline.total_time * 1.1

    def test_task_combining_reduces_task_count(self):
        graph = power_law_graph(1500, 16.0, exponent=2.0, seed=36, name="ablate")
        combined = HyTGraphEngine(
            graph, options=HyTGraphOptions(num_partitions=24, task_combining=True)
        ).run(DeltaPageRank())
        uncombined = HyTGraphEngine(
            graph, options=HyTGraphOptions(num_partitions=24, task_combining=False)
        ).run(DeltaPageRank())
        combined_tasks = sum(sum(stats.engine_tasks.values()) for stats in combined.iterations)
        uncombined_tasks = sum(sum(stats.engine_tasks.values()) for stats in uncombined.iterations)
        assert combined_tasks < uncombined_tasks


class TestScalingShape:
    """Figure 9: runtime grows with graph size for every system."""

    def test_runtime_grows_with_rmat_size(self):
        from repro.graph.generators import rmat_graph

        times = {}
        for scale, edges in ((0, 4000), (1, 16000)):
            graph = rmat_graph(2 ** (11 + scale), edges, seed=41, name="rmat-%d" % edges)
            workload = build_workload("rmat", "pagerank", graph=graph)
            times[edges] = workload.run("hytgraph").total_time
        assert times[16000] > times[4000]
