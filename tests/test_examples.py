"""Smoke tests: every example script runs end to end.

The examples are user-facing documentation; these tests keep them from
rotting.  Each example is executed in-process with its module-level
``main()`` so failures surface as ordinary test failures.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = [
    "quickstart.py",
    "social_network_analysis.py",
    "web_graph_ranking.py",
    "transfer_management_study.py",
]


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location("example_" + path.stem, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    output = capsys.readouterr().out
    assert len(output) > 100, "example should print a report"


def test_every_example_file_is_covered():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES)
