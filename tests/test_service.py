"""Tests of the session-oriented serving API (:mod:`repro.service`).

Four guarantees anchor the service:

1. **Equivalence** — a query served through :class:`GraphService` returns
   per-vertex values (and per-iteration simulated times) bitwise equal to
   a standalone ``system.run`` for every (algorithm x system) cell.
2. **Priority scheduling** — on a mixed batch, the high-priority class's
   latencies under priority scheduling are never worse than under FIFO,
   and query values are identical under both disciplines.
3. **Admission control** — requests are rejected or queued against the
   estimated-bytes-in-flight budget, including the zero-budget and
   unlimited-budget edges.
4. **Lifecycle** — handles walk submit -> poll -> result deterministically
   and the per-class statistics (latency percentiles, SLA attainment)
   add up.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_graph
from repro.runtime.batch import QueryBatchRunner
from repro.service import (
    GraphService,
    Priority,
    QueryRequest,
    RequestRejected,
    RequestStatus,
    ServiceConfig,
)
from repro.sim.config import HardwareConfig
from repro.systems import SYSTEMS, make_system
from repro.systems.exptm_filter import ExpTMFilterSystem
from repro.systems.hytgraph import HyTGraphSystem

ALGORITHM_KEYS = ["sssp", "bfs", "cc", "pagerank", "php"]


@pytest.fixture(scope="module")
def graphs():
    """One graph per algorithm flavour (weighted, symmetrized, plain)."""
    plain = rmat_graph(500, 4000, seed=9, name="rmat")
    weighted = rmat_graph(500, 4000, seed=9, weighted=True, name="rmat-w")
    symmetric = plain.symmetrize()
    symmetric = CSRGraph(
        symmetric.row_offset, symmetric.column_index, symmetric.edge_value, name="rmat-sym"
    )
    return {"sssp": weighted, "cc": symmetric, "bfs": plain, "pagerank": plain, "php": plain}


def _graph_for(graphs, algorithm_key):
    return graphs[algorithm_key]


def _transfer_bound_config(graph):
    return HardwareConfig(gpu_memory_bytes=graph.edge_data_bytes // 2, pcie_bandwidth=1e9)


# ----------------------------------------------------------------------
# (1) bitwise equivalence across the full algorithm x system grid
# ----------------------------------------------------------------------


@pytest.mark.parametrize("system_name", sorted(SYSTEMS))
@pytest.mark.parametrize("algorithm_key", ALGORITHM_KEYS)
def test_service_values_bitwise_equal_standalone_run(graphs, system_name, algorithm_key):
    graph = _graph_for(graphs, algorithm_key)
    program = make_algorithm(algorithm_key)
    source = 0 if program.needs_source else None
    system = make_system(system_name, graph, config=_transfer_bound_config(graph))

    standalone = system.run(program, source=source)
    service = GraphService(system=system)
    served = service.run(QueryRequest(algorithm=algorithm_key, source=source))

    assert np.array_equal(np.asarray(standalone.values), np.asarray(served.values))
    assert served.per_iteration_times() == standalone.per_iteration_times()
    assert served.total_transfer_bytes == standalone.total_transfer_bytes
    assert served.converged == standalone.converged


# ----------------------------------------------------------------------
# (2) priority scheduling invariants
# ----------------------------------------------------------------------


def _mixed_trace():
    return [
        QueryRequest(algorithm="pagerank", priority=Priority.BULK),
        QueryRequest(algorithm="pagerank", priority=Priority.BULK),
        QueryRequest(algorithm="bfs", source=3, priority=Priority.INTERACTIVE),
        QueryRequest(algorithm="bfs", source=9, priority=Priority.INTERACTIVE),
        QueryRequest(algorithm="bfs", source=21, priority=Priority.INTERACTIVE),
    ]


def _serve_mixed(graphs, scheduling):
    graph = _graph_for(graphs, "bfs")
    system = ExpTMFilterSystem(graph, config=_transfer_bound_config(graph))
    service = GraphService(
        ServiceConfig(system="exptm-f", scheduling=scheduling), system=system
    )
    handles = service.submit_many(_mixed_trace())
    service.drain()
    return service, handles


def test_high_priority_latencies_never_worse_than_fifo(graphs):
    """The invariant: priority scheduling cannot slow the high class down."""
    fifo_service, fifo_handles = _serve_mixed(graphs, "fifo")
    prio_service, prio_handles = _serve_mixed(graphs, "priority")

    for fifo, prio in zip(fifo_handles, prio_handles):
        if fifo.request.priority is Priority.INTERACTIVE:
            assert prio.latency_s <= fifo.latency_s + 1e-15
    # ... and the high-priority class makespan (its slowest member)
    # strictly improves on this transfer-bound mix.
    fifo_max = max(
        handle.latency_s
        for handle in fifo_handles
        if handle.request.priority is Priority.INTERACTIVE
    )
    prio_max = max(
        handle.latency_s
        for handle in prio_handles
        if handle.request.priority is Priority.INTERACTIVE
    )
    assert prio_max < fifo_max


def test_priority_scheduling_preserves_values_and_throughput(graphs):
    _, fifo_handles = _serve_mixed(graphs, "fifo")
    _, prio_handles = _serve_mixed(graphs, "priority")
    for fifo, prio in zip(fifo_handles, prio_handles):
        assert np.array_equal(
            np.asarray(fifo.result().values), np.asarray(prio.result().values)
        )


def test_batch_runner_priority_ranks_validated(graphs):
    graph = _graph_for(graphs, "bfs")
    system = ExpTMFilterSystem(graph, config=HardwareConfig())
    program = make_algorithm("bfs")
    with pytest.raises(ValueError, match="priorities"):
        QueryBatchRunner(system).run([(program, 0), (program, 1)], priorities=[0])


def test_batch_latencies_bounded_by_makespan(graphs):
    graph = _graph_for(graphs, "bfs")
    system = HyTGraphSystem(graph, config=_transfer_bound_config(graph))
    program = make_algorithm("bfs")
    batch = QueryBatchRunner(system).run(
        [(program, source) for source in (0, 3, 9)], priorities=[2, 1, 0]
    )
    assert len(batch.latencies) == 3
    for latency, result in zip(batch.latencies, batch.results):
        assert 0.0 < latency <= batch.makespan + 1e-12
        assert result.extra["batch_latency_s"] == latency
    assert batch.extra["scheduling"] == "priority"


def test_equal_priorities_reproduce_fifo_bitwise(graphs):
    """All-equal ranks must not perturb the merged schedule at all."""
    graph = _graph_for(graphs, "bfs")
    config = _transfer_bound_config(graph)
    program = make_algorithm("bfs")
    queries = [(program, source) for source in (0, 3, 9)]
    fifo = QueryBatchRunner(HyTGraphSystem(graph, config=config)).run(queries)
    ranked = QueryBatchRunner(HyTGraphSystem(graph, config=config)).run(
        queries, priorities=[1, 1, 1]
    )
    assert ranked.makespan == fifo.makespan
    assert ranked.latencies == fifo.latencies
    for left, right in zip(fifo.results, ranked.results):
        assert left.per_iteration_times() == right.per_iteration_times()


# ----------------------------------------------------------------------
# (3) admission control
# ----------------------------------------------------------------------


def _lookup(source=3, **kwargs):
    return QueryRequest(algorithm="bfs", source=source, **kwargs)


def _service(graphs, **config_kwargs):
    # ExpTM-F keeps the graph's vertex order, so contiguous sources
    # (0..2) share a partition and therefore an admission estimate.
    graph = _graph_for(graphs, "bfs")
    system = ExpTMFilterSystem(graph, config=_transfer_bound_config(graph))
    return GraphService(ServiceConfig(system="exptm-f", **config_kwargs), system=system)


def test_unlimited_budget_admits_everything_in_one_wave(graphs):
    service = _service(graphs, admission_budget_bytes=None)
    handles = service.submit_many([_lookup(s) for s in (0, 3, 9, 21)])
    assert all(handle.status is RequestStatus.QUEUED for handle in handles)
    waves = service.drain()
    assert len(waves) == 1
    stats = service.stats()
    assert stats.admitted == 4 and stats.rejected == 0 and stats.completed == 4


def test_zero_budget_rejects_every_transferring_request(graphs):
    service = _service(graphs, admission_budget_bytes=0)
    handle = service.submit(_lookup())
    assert handle.status is RequestStatus.REJECTED
    assert handle.estimated_bytes > 0
    assert "admission budget" in handle.reject_reason
    with pytest.raises(RequestRejected, match="rejected"):
        handle.result()
    assert service.drain() == []
    assert service.stats().rejected == 1


def test_oversized_request_rejected_under_both_policies(graphs):
    for policy in ("queue", "reject"):
        service = _service(graphs, admission_budget_bytes=1, admission_policy=policy)
        handle = service.submit(QueryRequest(algorithm="pagerank", priority=Priority.BULK))
        assert handle.status is RequestStatus.REJECTED, policy
        assert "exceed" in handle.reject_reason


def _co_partition_sources(service, count):
    """``count`` vertices sharing one partition (equal admission estimates)."""
    partitioning = service.system.partitioning
    for partition in partitioning:
        if partition.vertex_end - partition.vertex_start >= count:
            return list(range(partition.vertex_start, partition.vertex_start + count))
    raise AssertionError("no partition holds %d vertices" % count)


def test_queue_policy_splits_waves_and_charges_queue_wait(graphs):
    service = _service(graphs, admission_budget_bytes=None)
    sources = _co_partition_sources(service, 3)
    probe = service.submit(_lookup(sources[0]))
    estimate = probe.estimated_bytes
    assert estimate > 0
    service.drain()

    # A budget of exactly one lookup's estimate forces one query per wave
    # (the sources share a partition, so their estimates are equal).
    service = _service(
        graphs, admission_budget_bytes=estimate, admission_policy="queue"
    )
    handles = service.submit_many([_lookup(s) for s in sources])
    assert all(handle.status is RequestStatus.QUEUED for handle in handles)
    waves = service.drain()
    assert len(waves) == 3
    assert [handle.wave for handle in handles] == [0, 1, 2]
    # Later waves wait behind earlier ones: latency includes queue delay.
    assert handles[1].latency_s > waves[0].makespan
    assert handles[2].latency_s > handles[1].latency_s


def test_reject_policy_applies_hard_backpressure(graphs):
    probe_service = _service(graphs, admission_budget_bytes=None)
    sources = _co_partition_sources(probe_service, 3)
    estimate = probe_service.submit(_lookup(sources[0])).estimated_bytes

    # The sources share a partition, so every lookup estimates the same.
    service = _service(
        graphs, admission_budget_bytes=estimate, admission_policy="reject"
    )
    first = service.submit(_lookup(sources[0]))
    second = service.submit(_lookup(sources[1]))
    assert first.status is RequestStatus.QUEUED
    assert second.status is RequestStatus.REJECTED
    assert "retry" in second.reject_reason
    service.drain()
    # The served wave released its budget: new submissions are admitted.
    third = service.submit(_lookup(sources[2]))
    assert third.status is RequestStatus.QUEUED


def test_resident_partitions_discount_the_estimate(graphs):
    """Admission reuses the cache: resident partitions cost nothing."""
    graph = _graph_for(graphs, "bfs")
    system = ExpTMFilterSystem(
        graph, config=_transfer_bound_config(graph), cache_policy="frontier-aware"
    )
    service = GraphService(ServiceConfig(system="exptm-f"), system=system)
    cold = service.submit(QueryRequest(algorithm="pagerank", priority=Priority.BULK))
    service.drain()
    # After the analytical scan the adaptive cache holds hot partitions;
    # cache.reset() in the next wave does not run until it is served, so
    # estimate the same request again while the cache is warm.
    warm = service.submit(QueryRequest(algorithm="pagerank", priority=Priority.BULK))
    assert warm.estimated_bytes < cold.estimated_bytes


# ----------------------------------------------------------------------
# (4) lifecycle, validation and statistics
# ----------------------------------------------------------------------


def test_handle_lifecycle_submit_poll_result(graphs):
    service = _service(graphs)
    handle = service.submit(_lookup(deadline_s=10.0))
    assert handle.poll() is RequestStatus.QUEUED
    assert not handle.done
    assert handle.result(wait=False) is None
    result = handle.result()
    assert handle.poll() is RequestStatus.DONE
    assert handle.done
    assert result.converged
    assert handle.latency_s == result.extra["service_latency_s"]
    assert handle.deadline_met is True


def test_deadline_sla_accounting(graphs):
    service = _service(graphs)
    service.submit(_lookup(0, deadline_s=1e-12))  # unmeetable
    service.submit(_lookup(3, deadline_s=10.0))
    service.submit(_lookup(9))  # no SLA
    service.drain()
    stats = service.stats()
    assert stats.deadline_met == 1 and stats.deadline_missed == 1
    assert stats.deadline_attainment == pytest.approx(0.5)


def test_submit_validates_requests(graphs):
    service = _service(graphs)
    with pytest.raises(KeyError, match="unknown algorithm"):
        service.submit(QueryRequest(algorithm="triangles"))
    with pytest.raises(ValueError, match="takes no traversal source"):
        service.submit(QueryRequest(algorithm="pagerank", source=4))
    with pytest.raises(ValueError):  # out-of-range source
        service.submit(_lookup(10**9))
    # A source-based request without a source gets the service default.
    handle = service.submit(QueryRequest(algorithm="bfs"))
    assert handle.request_id >= 0


def test_sssp_requires_weighted_service_graph(graphs):
    graph = _graph_for(graphs, "bfs")  # unweighted
    service = GraphService(system=HyTGraphSystem(graph, config=HardwareConfig()))
    with pytest.raises(ValueError, match="weighted"):
        service.submit(QueryRequest(algorithm="sssp", source=0))


def test_cc_refused_on_directed_service_graph(graphs):
    """CC on an unsymmetrized graph would silently diverge from the
    evaluation grid (which symmetrizes for CC) — refuse it instead."""
    directed = GraphService(
        system=HyTGraphSystem(_graph_for(graphs, "bfs"), config=HardwareConfig())
    )
    with pytest.raises(ValueError, match="symmetric"):
        directed.submit(QueryRequest(algorithm="cc"))
    # On a symmetrized graph the same request serves fine.
    symmetric = GraphService(
        system=HyTGraphSystem(_graph_for(graphs, "cc"), config=HardwareConfig())
    )
    result = symmetric.run(QueryRequest(algorithm="cc"))
    assert result.converged


def test_synthetic_mixed_trace_shape(graphs):
    from repro.service import synthetic_mixed_trace

    graph = _graph_for(graphs, "bfs")
    trace = synthetic_mixed_trace(graph, point_lookups=3, analytical=2, seed=7)
    assert [request.priority for request in trace] == [Priority.BULK] * 2 + [
        Priority.INTERACTIVE
    ] * 3
    assert all(request.algorithm == "pagerank" for request in trace[:2])
    assert all(request.algorithm == "bfs" for request in trace[2:])
    with pytest.raises(ValueError, match="at least one request"):
        synthetic_mixed_trace(graph, 0, 0, seed=7)
    with pytest.raises(ValueError, match="non-negative"):
        synthetic_mixed_trace(graph, -1, 2, seed=7)


def test_service_stats_percentiles_and_rows(graphs):
    service, _ = _serve_mixed(graphs, "priority")
    stats = service.stats()
    assert stats.completed == 5
    p50 = stats.latency_percentile(Priority.INTERACTIVE, 50)
    p95 = stats.latency_percentile(Priority.INTERACTIVE, 95)
    assert 0.0 < p50 <= p95
    assert stats.latency_percentile(Priority.STANDARD, 95) == 0.0  # empty class
    rows = stats.class_rows()
    assert [row["class"] for row in rows] == ["interactive", "bulk"]
    payload = stats.as_dict()
    assert payload["completed"] == 5
    assert set(payload["latencies_by_class"]) == {"interactive", "bulk"}
    assert stats.queries_per_second > 0


def test_service_config_validation():
    with pytest.raises(ValueError, match="unknown system"):
        ServiceConfig(system="gunrock")
    with pytest.raises(ValueError, match="scheduling"):
        ServiceConfig(scheduling="round-robin")
    with pytest.raises(ValueError, match="admission"):
        ServiceConfig(admission_policy="drop")
    with pytest.raises(ValueError, match="non-negative"):
        ServiceConfig(admission_budget_bytes=-1)
    with pytest.raises(ValueError, match="devices"):
        ServiceConfig(devices=0)


def test_priority_parsing():
    assert Priority.parse("interactive") is Priority.INTERACTIVE
    assert Priority.parse("BULK") is Priority.BULK
    assert Priority.parse(1) is Priority.STANDARD
    assert Priority.parse(Priority.BULK) is Priority.BULK
    with pytest.raises(ValueError, match="unknown priority"):
        Priority.parse("urgent")
    assert Priority.INTERACTIVE < Priority.STANDARD < Priority.BULK


def test_service_builds_from_config():
    service = GraphService(ServiceConfig(dataset="SK", scale=0.05, system="emogi"))
    assert service.graph.is_weighted  # one graph serves every algorithm
    result = service.run(QueryRequest(algorithm="bfs", source=0))
    assert result.converged
    sssp = service.run(QueryRequest(algorithm="sssp", source=0))
    assert sssp.algorithm == "SSSP"


def test_multi_device_service_refuses_incapable_system():
    with pytest.raises(ValueError, match="multi-device"):
        GraphService(ServiceConfig(dataset="SK", scale=0.05, system="grus", devices=2))
