"""Tests for the HyTGraph runtime engine (correctness + behaviour)."""

import numpy as np
import pytest

from repro.algorithms import BFS, ConnectedComponents, DeltaPageRank, PHP, SSSP, reference
from repro.core.engine import HyTGraphEngine, HyTGraphOptions
from repro.core.selection import SelectionThresholds
from repro.transfer.base import EngineKind

from tests.conftest import assert_distances_equal


@pytest.fixture
def engine(medium_rmat_graph):
    return HyTGraphEngine(medium_rmat_graph, options=HyTGraphOptions(num_partitions=16))


class TestCorrectness:
    def test_sssp_matches_reference(self, medium_rmat_graph, engine):
        source = int(np.argmax(medium_rmat_graph.out_degrees))
        result = engine.run(SSSP(), source=source)
        assert result.converged
        assert_distances_equal(result.values, reference.sssp_distances(medium_rmat_graph, source))

    def test_bfs_matches_reference(self, medium_rmat_graph):
        graph = medium_rmat_graph.without_weights()
        engine = HyTGraphEngine(graph, options=HyTGraphOptions(num_partitions=16))
        source = int(np.argmax(graph.out_degrees))
        result = engine.run(BFS(), source=source)
        assert_distances_equal(result.values, reference.bfs_levels(graph, source))

    def test_cc_matches_reference(self, medium_power_law_graph):
        graph = medium_power_law_graph.without_weights().symmetrize()
        engine = HyTGraphEngine(graph, options=HyTGraphOptions(num_partitions=16))
        result = engine.run(ConnectedComponents())
        np.testing.assert_allclose(result.values, reference.connected_component_labels(graph))

    def test_pagerank_matches_reference(self, medium_rmat_graph):
        graph = medium_rmat_graph.without_weights()
        engine = HyTGraphEngine(graph, options=HyTGraphOptions(num_partitions=16))
        result = engine.run(DeltaPageRank(tolerance=1e-9))
        expected = reference.pagerank_values(graph)
        np.testing.assert_allclose(result.values, expected, rtol=1e-4, atol=1e-6)

    def test_php_matches_reference(self, medium_rmat_graph):
        graph = medium_rmat_graph.without_weights()
        engine = HyTGraphEngine(graph, options=HyTGraphOptions(num_partitions=16))
        source = int(np.argmax(graph.out_degrees))
        result = engine.run(PHP(tolerance=1e-10), source=source)
        expected = reference.php_values(graph, source)
        np.testing.assert_allclose(result.values, expected, rtol=1e-4, atol=1e-6)

    def test_hub_sorting_does_not_change_answers(self, medium_power_law_graph):
        source = int(np.argmax(medium_power_law_graph.out_degrees))
        with_hubs = HyTGraphEngine(
            medium_power_law_graph, options=HyTGraphOptions(num_partitions=16, hub_sorting=True)
        ).run(SSSP(), source=source)
        without_hubs = HyTGraphEngine(
            medium_power_law_graph, options=HyTGraphOptions(num_partitions=16, hub_sorting=False)
        ).run(SSSP(), source=source)
        assert_distances_equal(with_hubs.values, without_hubs.values)

    def test_every_option_combination_is_correct(self, medium_rmat_graph):
        source = int(np.argmax(medium_rmat_graph.out_degrees))
        expected = reference.sssp_distances(medium_rmat_graph, source)
        for task_combining in (True, False):
            for contribution in (True, False):
                for recompute in (True, False):
                    options = HyTGraphOptions(
                        num_partitions=12,
                        task_combining=task_combining,
                        contribution_scheduling=contribution,
                        recompute_loaded=recompute,
                    )
                    result = HyTGraphEngine(medium_rmat_graph, options=options).run(SSSP(), source=source)
                    assert_distances_equal(result.values, expected)


class TestBehaviour:
    def test_converges_and_records_iterations(self, medium_rmat_graph, engine):
        source = int(np.argmax(medium_rmat_graph.out_degrees))
        result = engine.run(SSSP(), source=source)
        assert result.converged
        assert result.num_iterations > 0
        assert result.total_time > 0
        assert result.total_transfer_bytes > 0

    def test_iteration_stats_consistent(self, medium_rmat_graph, engine):
        source = int(np.argmax(medium_rmat_graph.out_degrees))
        result = engine.run(SSSP(), source=source)
        for stats in result.iterations:
            assert stats.time >= 0
            assert stats.active_vertices >= 0
            assert stats.processed_edges >= 0
            assert sum(stats.engine_tasks.values()) >= 0

    def test_first_iteration_single_source(self, medium_rmat_graph, engine):
        source = int(np.argmax(medium_rmat_graph.out_degrees))
        result = engine.run(SSSP(), source=source)
        assert result.iterations[0].active_vertices == 1

    def test_engine_mix_uses_multiple_engines_for_pagerank(self, medium_power_law_graph):
        graph = medium_power_law_graph.without_weights()
        engine = HyTGraphEngine(graph, options=HyTGraphOptions(num_partitions=24))
        result = engine.run(DeltaPageRank())
        used = set()
        for stats in result.iterations:
            used.update(stats.engine_partitions.keys())
        assert EngineKind.EXP_FILTER.value in used or EngineKind.EXP_COMPACTION.value in used
        assert EngineKind.IMP_ZERO_COPY.value in used

    def test_preprocessing_time_recorded_with_hub_sorting(self, medium_power_law_graph):
        engine = HyTGraphEngine(
            medium_power_law_graph, options=HyTGraphOptions(num_partitions=8, hub_sorting=True)
        )
        assert engine.preprocessing_time > 0
        no_hubs = HyTGraphEngine(
            medium_power_law_graph, options=HyTGraphOptions(num_partitions=8, hub_sorting=False)
        )
        assert no_hubs.preprocessing_time == 0.0

    def test_result_extra_metadata(self, medium_rmat_graph, engine):
        source = int(np.argmax(medium_rmat_graph.out_degrees))
        result = engine.run(SSSP(), source=source)
        assert result.extra["num_partitions"] == 16
        assert result.extra["hub_sorted"] is True

    def test_transfers_less_than_exptm_filter_on_sparse_traversal(self, medium_rmat_graph):
        from repro.systems.exptm_filter import ExpTMFilterSystem

        source = int(np.argmax(medium_rmat_graph.out_degrees))
        hytgraph = HyTGraphEngine(
            medium_rmat_graph, options=HyTGraphOptions(num_partitions=16)
        ).run(SSSP(), source=source)
        filter_only = ExpTMFilterSystem(medium_rmat_graph, num_partitions=16).run(SSSP(), source=source)
        assert hytgraph.total_transfer_bytes < filter_only.total_transfer_bytes

    def test_max_iterations_bound(self, medium_rmat_graph):
        options = HyTGraphOptions(num_partitions=8, max_iterations=1)
        result = HyTGraphEngine(medium_rmat_graph, options=options).run(
            SSSP(), source=int(np.argmax(medium_rmat_graph.out_degrees))
        )
        assert result.num_iterations == 1
        assert not result.converged

    def test_custom_thresholds(self, medium_rmat_graph):
        options = HyTGraphOptions(
            num_partitions=8, thresholds=SelectionThresholds(alpha=0.5, beta=0.2)
        )
        source = int(np.argmax(medium_rmat_graph.out_degrees))
        result = HyTGraphEngine(medium_rmat_graph, options=options).run(SSSP(), source=source)
        assert result.converged

    def test_partition_bytes_option(self, medium_rmat_graph):
        options = HyTGraphOptions(partition_bytes=2048, hub_sorting=False)
        engine = HyTGraphEngine(medium_rmat_graph, options=options)
        assert engine.partitioning.num_partitions > 4

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph

        graph = CSRGraph.empty(0)
        engine = HyTGraphEngine(graph, options=HyTGraphOptions(hub_sorting=False))
        result = engine.run(DeltaPageRank())
        assert result.converged
        assert result.num_iterations == 0

    def test_source_translation_with_hub_sorting(self, medium_power_law_graph):
        # The reported distances must be indexed by *original* vertex ids.
        source = int(np.argmin(medium_power_law_graph.out_degrees + (medium_power_law_graph.out_degrees == 0) * 10**9))
        result = HyTGraphEngine(
            medium_power_law_graph, options=HyTGraphOptions(num_partitions=8, hub_sorting=True)
        ).run(SSSP(), source=source)
        assert result.values[source] == 0.0
