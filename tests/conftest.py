"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import power_law_graph, random_weights, rmat_graph, uniform_random_graph
from repro.sim.config import HardwareConfig


@pytest.fixture
def paper_graph() -> CSRGraph:
    """The 6-vertex weighted example of Figure 1 (vertices a..f -> 0..5).

    CSR row_offset = [0, 2, 4, 6, 8, 9, 10], neighbors and weights as in
    the figure; shortest distances from ``a`` are [0, 2, 4, 3, 4, 6].
    """
    edges = [
        (0, 1, 2.0),  # a -> b
        (0, 2, 6.0),  # a -> c
        (1, 2, 2.0),  # b -> c
        (1, 3, 1.0),  # b -> d
        (2, 3, 2.0),  # c -> d
        (2, 4, 1.0),  # c -> e
        (3, 4, 1.0),  # d -> e
        (3, 5, 4.0),  # d -> f
        (4, 5, 2.0),  # e -> f
        (5, 0, 3.0),  # f -> a
    ]
    pairs = [(src, dst) for src, dst, _ in edges]
    weights = [weight for _, _, weight in edges]
    return CSRGraph.from_edges(pairs, num_vertices=6, weights=weights, name="figure1")


@pytest.fixture
def small_random_graph() -> CSRGraph:
    """A small weighted uniform random graph used across unit tests."""
    return uniform_random_graph(60, 400, seed=3, weighted=True, name="small-random")


@pytest.fixture
def medium_power_law_graph() -> CSRGraph:
    """A medium power-law graph (hubs + long tail) for system tests."""
    graph = power_law_graph(400, 12.0, exponent=2.0, seed=11, name="medium-pl")
    return graph.with_weights(random_weights(graph.num_edges, seed=12))


@pytest.fixture
def medium_rmat_graph() -> CSRGraph:
    """A medium RMAT graph (web-like locality) for system tests."""
    graph = rmat_graph(512, 6000, seed=21, name="medium-rmat")
    return graph.with_weights(random_weights(graph.num_edges, seed=22))


@pytest.fixture
def config() -> HardwareConfig:
    """Default 2080Ti-like configuration."""
    return HardwareConfig()


@pytest.fixture
def tiny_memory_config() -> HardwareConfig:
    """A configuration whose GPU memory holds almost nothing (forces eviction)."""
    return HardwareConfig(gpu_memory_bytes=8 * 4096)


def assert_distances_equal(actual: np.ndarray, expected: np.ndarray) -> None:
    """Compare distance arrays treating inf (unreachable) consistently."""
    actual = np.where(np.isinf(actual), -1.0, actual)
    expected = np.where(np.isinf(expected), -1.0, expected)
    np.testing.assert_allclose(actual, expected)
