"""Unit tests for contribution-driven priority scheduling (Section VI-A)."""

import numpy as np
import pytest

from repro.algorithms.pagerank import DeltaPageRank
from repro.algorithms.sssp import SSSP
from repro.core.combiner import ScheduledTask
from repro.core.priority import ContributionScheduler
from repro.graph.partition import partition_by_count
from repro.graph.reorder import hub_scores
from repro.transfer.base import EngineKind


@pytest.fixture
def graph(medium_power_law_graph):
    return medium_power_law_graph


@pytest.fixture
def partitioning(graph):
    return partition_by_count(graph, 8)


def make_task(engine, partition_indices, partitioning):
    vertices = np.concatenate(
        [np.arange(partitioning[i].vertex_start, partitioning[i].vertex_end) for i in partition_indices]
    )
    return ScheduledTask(engine=engine, partition_indices=list(partition_indices), active_vertices=vertices)


class TestHubContribution:
    def test_matches_hub_score_sum(self, graph, partitioning):
        scheduler = ContributionScheduler(graph, partitioning)
        scores = hub_scores(graph)
        task = make_task(EngineKind.EXP_FILTER, [0, 1], partitioning)
        expected = scores[partitioning[0].vertex_start : partitioning[1].vertex_end].sum()
        assert scheduler.hub_contribution(task) == pytest.approx(expected)

    def test_higher_hub_mass_scheduled_earlier(self, graph, partitioning):
        scheduler = ContributionScheduler(graph, partitioning)
        scores = hub_scores(graph)
        per_partition = [
            scores[p.vertex_start : p.vertex_end].sum() for p in partitioning
        ]
        rich = int(np.argmax(per_partition))
        poor = int(np.argmin(per_partition))
        tasks = [
            make_task(EngineKind.EXP_FILTER, [poor], partitioning),
            make_task(EngineKind.EXP_FILTER, [rich], partitioning),
        ]
        program = SSSP()
        state = program.create_state(graph.with_weights(1.0), source=0)
        ordered = scheduler.prioritize(tasks, program, state)
        assert ordered[0].partition_indices == [rich]


class TestDeltaContribution:
    def test_delta_mass_orders_accumulative_tasks(self, graph, partitioning):
        scheduler = ContributionScheduler(graph, partitioning)
        program = DeltaPageRank()
        state = program.create_state(graph)
        # Concentrate residual mass in partition 5.
        state["delta"][:] = 0.0
        target = partitioning[5]
        state["delta"][target.vertex_start : target.vertex_end] = 10.0
        tasks = [
            make_task(EngineKind.IMP_ZERO_COPY, [1], partitioning),
            make_task(EngineKind.IMP_ZERO_COPY, [5], partitioning),
        ]
        ordered = scheduler.prioritize(tasks, program, state)
        assert ordered[0].partition_indices == [5]

    def test_delta_contribution_value(self, graph, partitioning):
        scheduler = ContributionScheduler(graph, partitioning)
        program = DeltaPageRank()
        state = program.create_state(graph)
        task = make_task(EngineKind.IMP_ZERO_COPY, [2], partitioning)
        expected = state["delta"][partitioning[2].vertex_start : partitioning[2].vertex_end].sum()
        assert scheduler.delta_contribution(task, program, state) == pytest.approx(expected)


class TestEngineOrdering:
    def test_filter_tasks_before_zero_copy_and_compaction(self, graph, partitioning):
        scheduler = ContributionScheduler(graph, partitioning)
        program = SSSP()
        state = program.create_state(graph.with_weights(1.0), source=0)
        tasks = [
            make_task(EngineKind.EXP_COMPACTION, [0], partitioning),
            make_task(EngineKind.IMP_ZERO_COPY, [1], partitioning),
            make_task(EngineKind.EXP_FILTER, [2], partitioning),
        ]
        ordered = scheduler.prioritize(tasks, program, state)
        assert ordered[0].engine == EngineKind.EXP_FILTER
        assert ordered[-1].engine == EngineKind.EXP_COMPACTION


class TestDisabled:
    def test_disabled_keeps_generation_order_within_engine(self, graph, partitioning):
        scheduler = ContributionScheduler(graph, partitioning, enabled=False)
        program = SSSP()
        state = program.create_state(graph.with_weights(1.0), source=0)
        tasks = [make_task(EngineKind.EXP_FILTER, [index], partitioning) for index in range(4)]
        ordered = scheduler.prioritize(tasks, program, state)
        assert [task.partition_indices[0] for task in ordered] == [0, 1, 2, 3]

    def test_empty_task_list(self, graph, partitioning):
        scheduler = ContributionScheduler(graph, partitioning)
        program = SSSP()
        state = program.create_state(graph.with_weights(1.0), source=0)
        assert scheduler.prioritize([], program, state) == []
