"""Tests of the observability layer (:mod:`repro.obs`).

Four guarantees anchor the tracer:

1. **Invisibility** — tracing never changes a served number: with the
   no-op tracer the instrumented paths execute the exact pre-tracer
   arithmetic, and a recording tracer observes bitwise the same run.
2. **Tiling** — a traced query's track is tiled with non-overlapping
   spans (queue wait, restore/capture copies, exec tiles, suspensions)
   whose durations sum to its measured service latency.
3. **Determinism** — equal runs emit bitwise-equal span streams (the
   golden-file test), and query sampling is a pure hash of the request
   id.
4. **Exportability** — the Chrome trace payload passes the shared schema
   validator and reconstructs per-query latency budgets through the
   flight recorder.

Regenerating the golden span stream after an intentional instrumentation
change (module-level scenario of ``test_golden_span_stream``)::

    PYTHONPATH=src python - <<'EOF'
    from repro.graph.generators import rmat_graph
    from repro.obs import spans_to_jsonl
    from repro.service import GraphService, QueryRequest, ServiceConfig
    from repro.sim.config import HardwareConfig
    graph = rmat_graph(400, 3200, seed=11, weighted=True, name="obs-rmat")
    hw = HardwareConfig(gpu_memory_bytes=graph.edge_data_bytes // 2,
                        pcie_bandwidth=1e9)
    service = GraphService(ServiceConfig(system="hytgraph", tracing=True),
                           graph=graph, hardware=hw)
    service.submit(QueryRequest(algorithm="pagerank", priority="bulk",
                                label="analytic"))
    service.submit(QueryRequest(algorithm="bfs", source=0,
                                priority="interactive", label="lookup"))
    service.drain()
    open("tests/data/golden_trace_spans.jsonl", "w").write(
        spans_to_jsonl(service.tracer.spans()))
    EOF
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.graph.generators import rmat_graph
from repro.metrics.percentiles import percentile, percentiles
from repro.obs import (
    CATEGORIES,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    TracingConfig,
    chrome_trace,
    flight_report,
    make_tracer,
    query_summary,
    query_tracks,
    spans_to_jsonl,
    validate_chrome_trace,
)
from repro.service import (
    GraphService,
    QueryRequest,
    ReplayHarness,
    ServiceConfig,
)
from repro.sim.config import HardwareConfig
from repro.systems import make_system

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trace_spans.jsonl"


@pytest.fixture(scope="module")
def obs_graph():
    """A weighted RMAT graph small enough for golden files."""
    return rmat_graph(400, 3200, seed=11, weighted=True, name="obs-rmat")


@pytest.fixture(scope="module")
def obs_hardware(obs_graph):
    """Half the edge data fits on device: transfers and cache churn."""
    return HardwareConfig(
        gpu_memory_bytes=obs_graph.edge_data_bytes // 2, pcie_bandwidth=1e9
    )


def _mixed_service(obs_graph, obs_hardware, **config_kwargs):
    config = ServiceConfig(system="hytgraph", **config_kwargs)
    return GraphService(config, graph=obs_graph, hardware=obs_hardware)


def _serve_mix(service):
    """One bulk PageRank + one interactive BFS, drained."""
    handles = [
        service.submit(
            QueryRequest(algorithm="pagerank", priority="bulk", label="analytic")
        ),
        service.submit(
            QueryRequest(algorithm="bfs", source=0, priority="interactive", label="lookup")
        ),
    ]
    service.drain()
    return handles


class TestTracer:
    def test_null_tracer_is_inert(self):
        assert NullTracer.enabled is False
        assert NULL_TRACER.span("query", "x", "t", 0.0, 1.0) is None
        assert NULL_TRACER.instant("query", "x") is None
        assert NULL_TRACER.cursor("t", default=7.5) == 7.5
        assert NULL_TRACER.trace_query(3) is False
        assert NULL_TRACER.spans() == []
        NULL_TRACER.set_clock(5.0)
        NULL_TRACER.set_sample(0.5)  # no-op, not an error

    def test_make_tracer(self):
        assert make_tracer(None) is NULL_TRACER
        assert make_tracer(False) is NULL_TRACER
        assert isinstance(make_tracer(True), Tracer)
        config = TracingConfig(capacity=8)
        tracer = make_tracer(config)
        assert tracer.config is config

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TracingConfig(capacity=0)
        with pytest.raises(ValueError):
            TracingConfig(sample=1.5)
        with pytest.raises(ValueError):
            Tracer().set_sample(-0.1)

    def test_span_ids_and_cursor(self):
        tracer = Tracer()
        a = tracer.span("iteration", "iter0", "query:q0", 0.0, 1.5)
        b = tracer.instant("query", "done", track="query:q0", t=1.5)
        assert (a.span_id, b.span_id) == (0, 1)
        assert b.is_instant and not a.is_instant
        # Spans advance the track cursor; instants do not.
        assert tracer.cursor("query:q0") == 1.5
        assert tracer.cursor("query:q1", default=3.0) == 3.0

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(TracingConfig(capacity=3))
        for index in range(5):
            tracer.span("iteration", "iter%d" % index, "t", float(index), index + 1.0)
        retained = tracer.spans()
        assert [span.name for span in retained] == ["iter2", "iter3", "iter4"]
        assert tracer.total_spans == 5
        assert tracer.dropped_spans == 2

    def test_sampling_is_deterministic_hash(self):
        tracer = Tracer(TracingConfig(sample=0.5, seed=3))
        picked = {rid for rid in range(200) if tracer.trace_query(rid)}
        again = {rid for rid in range(200) if tracer.trace_query(rid)}
        assert picked == again
        assert 0 < len(picked) < 200
        # Edge samples short-circuit the hash entirely.
        tracer.set_sample(0.0)
        assert not any(tracer.trace_query(rid) for rid in range(50))
        tracer.set_sample(1.0)
        assert all(tracer.trace_query(rid) for rid in range(50))

    def test_instant_defaults_to_clock_and_category_lane(self):
        tracer = Tracer()
        tracer.set_clock(2.25)
        record = tracer.instant("cache", "evict", bytes=64)
        assert record.track == "cache"
        assert record.start_s == record.end_s == 2.25


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.count("service.completed", 2)
        registry.count("service.completed", 3)
        registry.gauge("service.makespan_s", 1.5)
        for value in (0.0002, 0.003, 0.003, 20.0, 1000.0):
            registry.observe("service.latency_s.bulk", value)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["service.completed"] == 5
        assert snapshot["gauges"]["service.makespan_s"] == 1.5
        histogram = snapshot["histograms"]["service.latency_s.bulk"]
        assert histogram["count"] == 5
        assert histogram["sum"] == pytest.approx(1020.0062)
        assert list(histogram["bounds"]) == list(LATENCY_BUCKETS_S)
        # One overflow bucket beyond the last bound, and it caught 1000.0.
        assert len(histogram["counts"]) == len(LATENCY_BUCKETS_S) + 1
        assert histogram["counts"][-1] == 1

    def test_snapshot_is_sorted(self):
        registry = MetricsRegistry()
        registry.count("z.last", 1)
        registry.count("a.first", 1)
        registry.merge_counters("cache", {"hits": 3, "admits": 1})
        snapshot = registry.snapshot()
        names = list(snapshot["counters"])
        assert names == sorted(names)
        assert snapshot["counters"]["cache.hits"] == 3


class TestPercentileHelper:
    def test_matches_numpy_bitwise(self):
        values = np.random.default_rng(7).random(101)
        for q in (50, 95, 99):
            assert percentile(values, q) == float(np.percentile(values, q))
        assert list(percentiles(values, (50, 95))) == [
            percentile(values, 50),
            percentile(values, 95),
        ]

    def test_empty_is_zero(self):
        assert percentile([], 95) == 0.0


class TestChromeExport:
    def test_schema_and_metadata(self):
        tracer = Tracer()
        tracer.span("wave", "wave0", "service", 0.0, 1.0)
        tracer.instant("query", "done", track="query:q0", t=1.0, latency_s=1.0)
        payload = chrome_trace(tracer.spans(), metrics={"counters": {}}, dropped=0)
        assert validate_chrome_trace(payload) == []
        names = {
            event["args"]["name"]
            for event in payload["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert names == {"service", "query:q0"}
        assert payload["otherData"]["clock"] == "simulated"
        assert payload["otherData"]["metrics"] == {"counters": {}}
        assert payload["otherData"]["tracks"] == ["service", "query:q0"]

    def test_validator_catches_problems(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
        bad = {
            "traceEvents": [
                {"name": "x", "cat": "query", "ph": "X", "ts": -1.0, "pid": 0, "tid": 9},
                {"name": "y", "cat": "query", "ph": "B", "ts": 0.0, "pid": 0, "tid": 9},
                {"name": "z", "ph": "X"},
            ]
        }
        problems = validate_chrome_trace(bad)
        assert any("bad ts" in problem for problem in problems)
        assert any("unexpected phase" in problem for problem in problems)
        assert any("missing keys" in problem for problem in problems)
        assert any("without thread_name" in problem for problem in problems)

    def test_jsonl_round_trip(self):
        span = Span(0, "iteration", "iter0", "query:q0", 0.0, 0.5, {"kernel_s": 0.1})
        lines = spans_to_jsonl([span]).splitlines()
        assert json.loads(lines[0]) == span.as_dict()


class TestServiceTracing:
    def test_tracing_is_bitwise_invisible(self, obs_graph, obs_hardware):
        def run(tracing):
            service = _mixed_service(
                obs_graph, obs_hardware, tracing=tracing,
                preemption=True, faults="transfer-flaky:p=0.02", cache_policy="lru",
            )
            handles = _serve_mix(service)
            outcomes = [
                (
                    handle.status.name,
                    handle.latency_s,
                    None
                    if handle._result is None or handle._result.values is None
                    else handle._result.values.tobytes(),
                )
                for handle in handles
            ]
            return outcomes, json.dumps(service.stats().as_dict(), default=str)

        assert run(None) == run(True)

    def test_query_tiles_sum_to_latency(self, obs_graph, obs_hardware):
        service = _mixed_service(obs_graph, obs_hardware, tracing=True)
        handles = _serve_mix(service)
        payload = chrome_trace(service.tracer.spans())
        assert validate_chrome_trace(payload) == []
        # Interactive sorts ahead of bulk, so its lane opens first.
        assert query_tracks(payload) == ["lookup", "analytic"]
        for handle in handles:
            label = handle.request.label
            summary = query_summary(payload, label)
            assert summary["status"] == "done"
            assert summary["latency_s"] == pytest.approx(handle.latency_s, abs=1e-12)
            assert summary["components_total_s"] == pytest.approx(
                handle.latency_s, abs=1e-9
            )
            assert summary["iterations"] > 0

    def test_wave_and_device_tracks_present(self, obs_graph, obs_hardware):
        service = _mixed_service(obs_graph, obs_hardware, tracing=True)
        _serve_mix(service)
        spans = service.tracer.spans()
        categories = {span.category for span in spans}
        assert categories <= set(CATEGORIES)
        tracks = {span.track for span in spans}
        assert "service" in tracks
        assert any(track.startswith("dev0:") for track in tracks)
        waves = [span for span in spans if span.category == "wave"]
        supers = [span for span in spans if span.category == "super"]
        assert waves and supers
        # Super-iterations tile their wave.
        wave = waves[0]
        assert supers[0].start_s == wave.start_s
        assert supers[-1].end_s == pytest.approx(wave.end_s)

    def test_preempted_bulk_flight_recorder(self, obs_graph, obs_hardware):
        solo = _mixed_service(obs_graph, obs_hardware)
        total = solo.run(QueryRequest(algorithm="pagerank", priority="bulk")).total_time

        service = _mixed_service(
            obs_graph, obs_hardware, tracing=True, preemption=True
        )
        bulk = service.submit(
            QueryRequest(algorithm="pagerank", priority="bulk", label="bulk-pr")
        )
        service.submit(
            QueryRequest(
                algorithm="bfs", source=0, priority="interactive",
                arrival_s=total * 0.3, label="probe",
            )
        )
        service.drain()
        assert bulk.preemptions >= 1

        payload = chrome_trace(service.tracer.spans())
        summary = query_summary(payload, "bulk-pr")
        assert summary["preemptions"] == bulk.preemptions
        assert summary["copy_bytes"] > 0
        assert summary["copies"]["preemption capture"] > 0
        assert summary["copies"]["resume restore"] > 0
        assert summary["components_total_s"] == pytest.approx(
            bulk.latency_s, abs=1e-9
        )
        # The capture/restore copies bracket the suspension on the track.
        # A zero-length suspension (resume wave forming the instant the
        # capture ends) is elided — the tiling stays exact either way.
        brackets = [
            span
            for span in service.tracer.spans()
            if span.track == "query:bulk-pr"
            and span.name in ("preempt-capture", "suspended", "resume-restore")
        ]
        names = [span.name for span in brackets]
        assert names in (
            ["preempt-capture", "suspended", "resume-restore"],
            ["preempt-capture", "resume-restore"],
        )
        capture, restore = brackets[0], brackets[-1]
        assert capture.end_s <= restore.start_s
        assert capture.attrs["checkpoint_bytes"] > 0
        assert restore.attrs["checkpoint_bytes"] > 0

        report = flight_report(payload, "bulk-pr")
        assert "1 preemption(s)" in report
        assert "preemption capture" in report
        assert "%d checkpoint bytes moved" % summary["copy_bytes"] in report

    def test_golden_span_stream(self, obs_graph, obs_hardware):
        service = _mixed_service(obs_graph, obs_hardware, tracing=True)
        _serve_mix(service)
        emitted = spans_to_jsonl(service.tracer.spans())
        assert emitted == GOLDEN_PATH.read_text(), (
            "the traced span stream changed; if intentional, regenerate "
            "tests/data/golden_trace_spans.jsonl (see the module docstring "
            "of tests/test_obs.py)"
        )

    def test_rejected_request_is_traced(self, obs_graph, obs_hardware):
        service = _mixed_service(
            obs_graph, obs_hardware, tracing=True,
            admission_budget_bytes=0, admission_policy="reject",
        )
        handle = service.submit(
            QueryRequest(algorithm="pagerank", priority="bulk", label="big")
        )
        assert handle.status.name == "REJECTED"
        (span,) = service.tracer.spans()
        assert (span.name, span.track) == ("rejected", "query:big")
        assert "reason" in span.attrs

    def test_sampling_bounds_query_lanes(self, obs_graph, obs_hardware):
        service = _mixed_service(
            obs_graph, obs_hardware, tracing=TracingConfig(sample=0.0)
        )
        _serve_mix(service)
        tracks = {span.track for span in service.tracer.spans()}
        assert not any(track.startswith("query:") for track in tracks)
        assert "service" in tracks  # global lanes always recorded

    def test_metrics_registry_covers_the_service(self, obs_graph, obs_hardware):
        service = _mixed_service(
            obs_graph, obs_hardware, tracing=True, cache_policy="lru",
            faults="transfer-flaky:p=0.05",
        )
        _serve_mix(service)
        snapshot = service.metrics().snapshot()
        stats = service.stats()
        assert snapshot["counters"]["service.completed"] == stats.completed
        assert snapshot["gauges"]["service.makespan_s"] == stats.makespan_s
        assert snapshot["counters"]["trace.spans"] == service.tracer.total_spans
        assert "cache.hit_bytes" in snapshot["counters"]
        assert "faults.injected" in snapshot["counters"]
        for priority, latencies in stats.latencies_by_class.items():
            name = "service.latency_s.%s" % priority.name.lower()
            assert snapshot["histograms"][name]["count"] == len(latencies)

    def test_observability_superset(self, obs_graph, obs_hardware):
        service = _mixed_service(obs_graph, obs_hardware, tracing=True)
        _serve_mix(service)
        payload = service.observability()
        as_dict = service.stats().as_dict()
        for key in as_dict:
            assert key in payload
        assert "metrics" in payload and "device_health" in payload
        json.dumps(payload)  # machine-readable end to end

    def test_export_requires_tracing(self, obs_graph, obs_hardware, tmp_path):
        service = _mixed_service(obs_graph, obs_hardware)
        with pytest.raises(ValueError, match="tracing"):
            service.export_trace(tmp_path / "trace.json")


class TestSoloRunTracing:
    def test_driver_emits_iteration_and_device_spans(self, obs_graph, obs_hardware):
        system = make_system("hytgraph", obs_graph, config=obs_hardware)
        tracer = Tracer()
        system.context.tracer = tracer
        from repro.algorithms import make_algorithm

        result = system.run(make_algorithm("bfs"), source=0)
        spans = tracer.spans()
        tiles = [span for span in spans if span.category == "iteration"]
        assert len(tiles) == result.num_iterations
        assert tiles[0].start_s == 0.0
        assert tiles[-1].end_s == pytest.approx(result.total_time)
        for tile, stats in zip(tiles, result.iterations):
            assert tile.duration_s == pytest.approx(stats.time)
            assert tile.attrs["active_vertices"] == stats.active_vertices
        assert any(span.category == "device" for span in spans)


class TestRunResultObservability:
    def test_run_observability(self, obs_graph, obs_hardware):
        system = make_system("hytgraph", obs_graph, config=obs_hardware)
        from repro.algorithms import make_algorithm

        result = system.run(make_algorithm("pagerank"))
        payload = result.observability()
        assert payload["system"] == result.system
        metrics = payload["metrics"]
        assert metrics["counters"]["run.iterations"] == result.num_iterations
        assert metrics["gauges"]["run.total_time_s"] == result.total_time
        assert metrics["histograms"]["run.iteration_time_s"]["count"] == (
            result.num_iterations
        )
        json.dumps(payload)


class TestReplayTracing:
    def test_trace_sample_hook(self, obs_graph, obs_hardware):
        from repro.service import synthetic_mixed_trace

        service = _mixed_service(obs_graph, obs_hardware, tracing=True)
        harness = ReplayHarness(service, trace_sample=0.0)
        harness.replay(synthetic_mixed_trace(obs_graph, 4, 1, 17))
        tracks = {span.track for span in service.tracer.spans()}
        assert not any(track.startswith("query:") for track in tracks)
        assert "service" in tracks

    def test_null_tracer_accepts_the_hook(self, obs_graph, obs_hardware):
        from repro.service import synthetic_mixed_trace

        service = _mixed_service(obs_graph, obs_hardware)
        harness = ReplayHarness(service, trace_sample=0.25)
        report = harness.replay(synthetic_mixed_trace(obs_graph, 2, 1, 17))
        assert report.completed == 3


class TestCLI:
    def test_serve_trace_out_and_inspect(self, capsys, tmp_path):
        from repro.cli import main

        trace_path = tmp_path / "spans.json"
        stats_path = tmp_path / "stats.json"
        code = main(
            [
                "serve", "--dataset", "SK", "--scale", "0.05",
                "--point-lookups", "2", "--analytical", "1",
                "--trace-out", str(trace_path), "--stats-json", str(stats_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "trace: wrote" in output and "stats: wrote" in output

        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) == []
        stats = json.loads(stats_path.read_text())
        assert "metrics" in stats and "classes" in stats

        assert main(["inspect", str(trace_path)]) == 0
        listing = capsys.readouterr().out
        assert "lookup-0" in listing and "analytical-0" in listing

        assert main(["inspect", str(trace_path), "--query", "lookup-0"]) == 0
        report = capsys.readouterr().out
        assert "flight recorder: lookup-0" in report
        assert "queue wait" in report

    def test_inspect_unknown_query(self, capsys, tmp_path):
        from repro.cli import main

        trace_path = tmp_path / "spans.json"
        trace_path.write_text(json.dumps(chrome_trace([])))
        with pytest.raises(SystemExit, match="traced queries"):
            main(["inspect", str(trace_path), "--query", "nope"])

    def test_batch_stats_json(self, capsys, tmp_path):
        from repro.cli import main

        stats_path = tmp_path / "batch.json"
        code = main(
            [
                "batch", "--dataset", "SK", "--scale", "0.05",
                "--algorithm", "bfs", "--num-queries", "2", "--no-baseline",
                "--stats-json", str(stats_path),
            ]
        )
        assert code == 0
        stats = json.loads(stats_path.read_text())
        assert stats["queries"] == 2
        assert len(stats["latencies_s"]) == 2

    def test_run_trace_out(self, capsys, tmp_path):
        from repro.cli import main

        trace_path = tmp_path / "run.json"
        code = main(
            [
                "run", "--dataset", "SK", "--scale", "0.05",
                "--algorithm", "bfs", "--trace-out", str(trace_path),
            ]
        )
        assert code == 0
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) == []
        assert query_tracks(payload) == ["q0"]


class TestClusterTracing:
    """The tiling invariant holds across host loss and migration."""

    def _lossy_cluster(self, obs_graph, obs_hardware):
        from repro.cluster import ClusterConfig, ClusterService

        probe = _mixed_service(obs_graph, obs_hardware)
        estimate = probe.admission.estimate_request_bytes(
            *probe.submit(QueryRequest(algorithm="sssp", source=0))._query
        )
        config = ClusterConfig(
            hosts=2,
            service=ServiceConfig(
                system="hytgraph", tracing=True,
                admission_budget_bytes=int(estimate * 1.5),
                faults="host-loss@1:host=1",
            ),
        )
        return ClusterService(config, graph=obs_graph, hardware=obs_hardware)

    def test_migrated_query_tiles_sum_to_latency(self, obs_graph, obs_hardware):
        cluster = self._lossy_cluster(obs_graph, obs_hardware)
        handles = cluster.submit_many(
            QueryRequest(algorithm="sssp", source=0, label="s%d" % index)
            for index in range(8)
        )
        cluster.drain()
        assert all(handle.done for handle in handles)
        assert cluster.router.failovers > 0

        payload = chrome_trace(cluster.trace_spans())
        assert validate_chrome_trace(payload) == []
        shipped = 0
        for handle in handles:
            summary = query_summary(payload, handle.request.label)
            assert summary["status"] == "done"
            assert summary["components_total_s"] == pytest.approx(
                handle.latency_s, abs=1e-9
            )
            if summary["copies"]["checkpoint shipping"] > 0:
                shipped += 1
        assert shipped == cluster.router.failovers

    def test_flight_report_names_the_shipment(self, obs_graph, obs_hardware):
        cluster = self._lossy_cluster(obs_graph, obs_hardware)
        handles = cluster.submit_many(
            QueryRequest(algorithm="sssp", source=0, label="s%d" % index)
            for index in range(8)
        )
        cluster.drain()
        payload = chrome_trace(cluster.trace_spans())
        migrated = next(
            handle.request.label
            for handle in handles
            if query_summary(payload, handle.request.label)["copies"]["checkpoint shipping"] > 0
        )
        report = flight_report(payload, migrated)
        assert "checkpoint shipping" in report
