"""Unit tests for the ``repro-graph`` command-line interface."""

import pytest

from repro.cli import DEFAULT_COMPARE_SYSTEMS, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.dataset == "SK"
        assert args.algorithm == "sssp"
        assert args.system == "hytgraph"

    def test_invalid_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--system", "gunrock"])

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--algorithm", "triangles"])

    def test_compare_default_systems(self):
        args = build_parser().parse_args(["compare"])
        assert args.systems == DEFAULT_COMPARE_SYSTEMS


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--dataset", "SK", "--scale", "0.05"]) == 0
        output = capsys.readouterr().out
        assert "SK" in output
        assert "|E|" in output

    def test_run_bfs(self, capsys):
        code = main(["run", "--dataset", "TW", "--algorithm", "bfs", "--system", "emogi", "--scale", "0.05"])
        assert code == 0
        output = capsys.readouterr().out
        assert "EMOGI / BFS on TW" in output
        assert "converged=True" in output

    def test_run_with_iteration_table(self, capsys):
        code = main(
            ["run", "--dataset", "SK", "--algorithm", "bfs", "--system", "hytgraph", "--scale", "0.05", "--iterations"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Per-iteration detail" in output

    def test_run_with_gpu_preset(self, capsys):
        code = main(
            ["run", "--dataset", "SK", "--algorithm", "bfs", "--system", "grus", "--scale", "0.05", "--gpu", "P100"]
        )
        assert code == 0
        assert "Grus / BFS" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(
            [
                "compare",
                "--dataset", "SK",
                "--algorithm", "bfs",
                "--systems", "emogi", "hytgraph",
                "--scale", "0.05",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "EMOGI" in output
        assert "HyTGraph" in output
        assert "slowdown" in output


class TestBatchCommand:
    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.algorithm == "sssp"
        assert args.system == "hytgraph"
        assert args.num_queries == 8
        assert args.sources is None

    def test_batch_sssp(self, capsys):
        code = main(
            ["batch", "--dataset", "SK", "--algorithm", "sssp", "--scale", "0.05",
             "--num-queries", "3"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "batch of 3 queries" in output
        assert "batch makespan" in output
        assert "vs sequential serving" in output

    def test_batch_explicit_sources_multi_gpu(self, capsys):
        code = main(
            ["batch", "--dataset", "SK", "--algorithm", "bfs", "--scale", "0.05",
             "--sources", "0", "5", "--devices", "2", "--no-baseline"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "batch of 2 queries" in output
        assert "x2 GPUs" in output
        assert "vs sequential" not in output

    def test_batch_sourceless_algorithm_rejects_sources(self):
        with pytest.raises(SystemExit, match="takes no traversal source"):
            main(["batch", "--algorithm", "pagerank", "--scale", "0.05",
                  "--sources", "0"])

    @pytest.mark.parametrize("system", ["grus", "imptm-um"])
    def test_batch_refuses_multi_device_incapable_system(self, system):
        with pytest.raises(SystemExit, match="no multi-device execution path"):
            main(["batch", "--system", system, "--devices", "2", "--scale", "0.05"])

    @pytest.mark.parametrize("system", ["grus", "imptm-um"])
    def test_run_refuses_multi_device_incapable_system(self, system):
        with pytest.raises(SystemExit, match="no multi-device execution path"):
            main(["run", "--system", system, "--devices", "2", "--scale", "0.05"])


class TestServeCommand:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.system == "hytgraph"
        assert args.scheduling == "priority"
        assert args.budget is None
        assert args.admission == "queue"
        assert args.trace is None

    def test_serve_synthetic_trace(self, capsys):
        code = main(["serve", "--dataset", "SK", "--scale", "0.05",
                     "--point-lookups", "4", "--analytical", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "served 6 of 6 requests" in output
        assert "Per-class service latency" in output
        assert "interactive" in output and "bulk" in output

    def test_serve_fifo_scheduling(self, capsys):
        code = main(["serve", "--dataset", "SK", "--scale", "0.05",
                     "--point-lookups", "2", "--analytical", "1",
                     "--scheduling", "fifo"])
        assert code == 0
        assert "fifo scheduling" in capsys.readouterr().out

    def test_serve_trace_file(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps([
            {"algorithm": "bfs", "source": 0, "priority": "interactive",
             "deadline_s": 10.0, "label": "lookup"},
            {"algorithm": "pagerank", "priority": "bulk"},
        ]))
        code = main(["serve", "--dataset", "SK", "--scale", "0.05",
                     "--trace", str(trace)])
        assert code == 0
        output = capsys.readouterr().out
        assert "served 2 of 2 requests" in output
        assert "deadlines: 1 met, 0 missed" in output

    def test_serve_zero_budget_reports_rejections(self, capsys):
        code = main(["serve", "--dataset", "SK", "--scale", "0.05",
                     "--point-lookups", "2", "--analytical", "0",
                     "--budget", "0"])
        assert code == 0
        output = capsys.readouterr().out
        assert "served 0 of 2 requests" in output
        assert "2 rejected" in output
        assert "admission budget" in output

    def test_serve_with_faults_reports_recovery(self, capsys):
        code = main(["serve", "--dataset", "SK", "--scale", "0.05", "--devices", "2",
                     "--point-lookups", "2", "--analytical", "1",
                     "--faults", "device-loss@2:device=0;transfer-flaky:p=0.05",
                     "--chaos-seed", "1"])
        assert code == 0
        output = capsys.readouterr().out
        assert "faults:" in output
        assert "recovery:" in output
        assert "devices: 1 of 2 alive" in output
        assert "lost: [0]" in output

    def test_serve_bad_fault_spec_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--scale", "0.05", "--faults", "meltdown:p=1"])
        assert "unknown fault kind" in str(excinfo.value)

    def test_serve_deadline_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--deadline", "0.25", "--enforce-deadlines"])
        assert args.deadline == 0.25
        assert args.enforce_deadlines

    def test_serve_bad_trace_rejected(self, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text("[]")
        with pytest.raises(SystemExit, match="non-empty JSON list"):
            main(["serve", "--scale", "0.05", "--trace", str(trace)])
        trace.write_text('[{"source": 3}]')
        with pytest.raises(SystemExit, match="entry #0.*algorithm"):
            main(["serve", "--scale", "0.05", "--trace", str(trace)])

    def test_serve_trace_unknown_algorithm_names_entry(self, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text('[{"algorithm": "bfs", "source": 0}, {"algorithm": "triangles"}]')
        with pytest.raises(SystemExit, match="entry #1.*unknown algorithm 'triangles'"):
            main(["serve", "--scale", "0.05", "--trace", str(trace)])

    def test_serve_trace_bad_priority_named(self, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text('[{"algorithm": "bfs", "source": 0, "priority": "urgent"}]')
        with pytest.raises(SystemExit, match="entry #0.*unknown priority 'urgent'"):
            main(["serve", "--scale", "0.05", "--trace", str(trace)])

    def test_serve_trace_negative_arrival_rejected(self, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text('[{"algorithm": "bfs", "source": 0, "arrival_s": -1.0}]')
        with pytest.raises(SystemExit, match="entry #0.*arrival_s"):
            main(["serve", "--scale", "0.05", "--trace", str(trace)])

    def test_serve_trace_partial_arrival_stamping_rejected(self, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text(
            '[{"algorithm": "bfs", "source": 0, "arrival_s": 0.1},'
            ' {"algorithm": "pagerank"}]'
        )
        with pytest.raises(SystemExit, match="entry #1.*missing 'arrival_s'"):
            main(["serve", "--scale", "0.05", "--trace", str(trace)])

    def test_serve_jsonl_trace_errors_carry_line_numbers(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            '{"algorithm": "bfs", "source": 0}\n'
            "\n"
            '{"algorithm": "bfs", "soruce": 3}\n'
        )
        with pytest.raises(SystemExit, match="line 3.*unknown key"):
            main(["serve", "--scale", "0.05", "--trace", str(trace)])

    def test_serve_jsonl_arrival_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            '{"algorithm": "bfs", "source": 0, "arrival_s": 0.0}\n'
            '{"algorithm": "pagerank", "priority": "bulk", "arrival_s": 0.001}\n'
        )
        code = main(["serve", "--dataset", "SK", "--scale", "0.05",
                     "--trace", str(trace)])
        assert code == 0
        assert "served 2 of 2 requests" in capsys.readouterr().out

    def test_serve_generated_arrivals_with_preemption(self, capsys):
        code = main(["serve", "--dataset", "SK", "--scale", "0.05",
                     "--arrivals", "poisson", "--rate", "5000",
                     "--requests", "30", "--seed", "3", "--preempt"])
        assert code == 0
        assert "served 30 of 30 requests" in capsys.readouterr().out

    def test_serve_arrivals_require_rate(self):
        with pytest.raises(SystemExit, match="positive --rate"):
            main(["serve", "--scale", "0.05", "--arrivals", "poisson",
                  "--requests", "10"])

    def test_serve_empty_synthetic_trace_rejected(self):
        with pytest.raises(SystemExit, match="synthetic trace"):
            main(["serve", "--scale", "0.05", "--point-lookups", "0",
                  "--analytical", "0"])

    def test_serve_refuses_multi_device_incapable_system(self):
        with pytest.raises(SystemExit, match="no multi-device execution path"):
            main(["serve", "--system", "grus", "--devices", "2", "--scale", "0.05"])


class TestCacheOptions:
    def test_cache_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.cache_policy == "static-prefix"
        assert args.cache_budget is None

    def test_invalid_cache_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--cache-policy", "clock"])

    def test_parse_byte_size_suffixes(self):
        from repro.cli import parse_byte_size

        assert parse_byte_size("1024") == 1024
        assert parse_byte_size("64K") == 64 * 1024
        assert parse_byte_size("2m") == 2 * 1024 * 1024
        assert parse_byte_size("1G") == 1024**3
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_byte_size("lots")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_byte_size("-1")

    def test_parse_byte_size_error_names_accepted_forms(self):
        import argparse

        from repro.cli import parse_byte_size

        assert parse_byte_size("512k") == 512 * 1024
        assert parse_byte_size("2g") == 2 * 1024**3
        with pytest.raises(argparse.ArgumentTypeError) as excinfo:
            parse_byte_size("3q")
        message = str(excinfo.value)
        assert "3q" in message
        assert "K/M/G" in message
        assert "either case" in message

    def test_run_with_adaptive_cache_reports_stats(self, capsys):
        code = main(["run", "--dataset", "SK", "--algorithm", "sssp", "--scale", "0.05",
                     "--system", "exptm-f", "--cache-policy", "frontier-aware"])
        assert code == 0
        assert "device cache (frontier-aware)" in capsys.readouterr().out

    def test_batch_seed_is_reproducible(self, capsys):
        argv = ["batch", "--dataset", "SK", "--algorithm", "sssp", "--scale", "0.05",
                "--num-queries", "3", "--seed", "9", "--no-baseline"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_batch_with_cache_policy_and_budget(self, capsys):
        code = main(["batch", "--dataset", "SK", "--algorithm", "sssp", "--scale", "0.05",
                     "--num-queries", "2", "--cache-policy", "lru", "--cache-budget", "64K",
                     "--no-baseline"])
        assert code == 0
        assert "device cache (lru)" in capsys.readouterr().out

    def test_ineffective_cache_budget_rejected(self):
        with pytest.raises(SystemExit, match="cache-budget has no effect"):
            main(["run", "--dataset", "SK", "--scale", "0.05", "--cache-budget", "64K"])

    def test_cache_budget_allowed_with_adaptive_policy_or_devices(self, capsys):
        code = main(["run", "--dataset", "SK", "--algorithm", "bfs", "--scale", "0.05",
                     "--system", "exptm-f", "--cache-policy", "lru", "--cache-budget", "64K"])
        assert code == 0
        assert "device cache (lru)" in capsys.readouterr().out
        code = main(["run", "--dataset", "SK", "--algorithm", "bfs", "--scale", "0.05",
                     "--devices", "2", "--cache-budget", "64K"])
        assert code == 0
