"""Unit tests for the ``repro-graph`` command-line interface."""

import pytest

from repro.cli import DEFAULT_COMPARE_SYSTEMS, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.dataset == "SK"
        assert args.algorithm == "sssp"
        assert args.system == "hytgraph"

    def test_invalid_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--system", "gunrock"])

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--algorithm", "triangles"])

    def test_compare_default_systems(self):
        args = build_parser().parse_args(["compare"])
        assert args.systems == DEFAULT_COMPARE_SYSTEMS


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--dataset", "SK", "--scale", "0.05"]) == 0
        output = capsys.readouterr().out
        assert "SK" in output
        assert "|E|" in output

    def test_run_bfs(self, capsys):
        code = main(["run", "--dataset", "TW", "--algorithm", "bfs", "--system", "emogi", "--scale", "0.05"])
        assert code == 0
        output = capsys.readouterr().out
        assert "EMOGI / BFS on TW" in output
        assert "converged=True" in output

    def test_run_with_iteration_table(self, capsys):
        code = main(
            ["run", "--dataset", "SK", "--algorithm", "bfs", "--system", "hytgraph", "--scale", "0.05", "--iterations"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Per-iteration detail" in output

    def test_run_with_gpu_preset(self, capsys):
        code = main(
            ["run", "--dataset", "SK", "--algorithm", "bfs", "--system", "grus", "--scale", "0.05", "--gpu", "P100"]
        )
        assert code == 0
        assert "Grus / BFS" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(
            [
                "compare",
                "--dataset", "SK",
                "--algorithm", "bfs",
                "--systems", "emogi", "hytgraph",
                "--scale", "0.05",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "EMOGI" in output
        assert "HyTGraph" in output
        assert "slowdown" in output
