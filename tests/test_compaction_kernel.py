"""Unit tests for the CPU compaction engine and the kernel time model."""

import numpy as np
import pytest

from repro.sim.compaction import CompactionEngine
from repro.sim.kernel import KernelModel


class TestCompactionContents:
    def test_compacted_subgraph_matches_source(self, paper_graph, config):
        engine = CompactionEngine(config)
        active = np.array([1, 3])
        result = engine.compact(paper_graph, active)
        subgraph = result.subgraph
        assert subgraph.num_vertices == 2
        assert subgraph.num_edges == 4
        np.testing.assert_array_equal(subgraph.vertices, active)
        np.testing.assert_array_equal(subgraph.column_index[:2], paper_graph.neighbors(1))
        np.testing.assert_array_equal(subgraph.column_index[2:], paper_graph.neighbors(3))
        np.testing.assert_allclose(subgraph.edge_value[:2], paper_graph.edge_weights(1))

    def test_compaction_unweighted(self, config):
        from repro.graph.generators import uniform_random_graph

        graph = uniform_random_graph(50, 300, seed=5)
        engine = CompactionEngine(config)
        result = engine.compact(graph, np.arange(0, 50, 2))
        assert result.subgraph.edge_value is None
        assert result.subgraph.num_edges == int(graph.out_degrees[::2].sum())

    def test_empty_active_set(self, paper_graph, config):
        engine = CompactionEngine(config)
        result = engine.compact(paper_graph, np.array([], dtype=np.int64))
        assert result.subgraph.num_edges == 0
        assert result.output_bytes == 0
        assert result.cpu_time == 0.0


class TestCompactionCost:
    def test_output_bytes_formula(self, config):
        engine = CompactionEngine(config)
        # Unweighted: edges * d1 + vertices * d2.
        assert engine.output_bytes(100, 10, weighted=False) == 100 * 4 + 10 * config.index_entry_bytes
        # Weighted: edges carry neighbor + weight.
        assert engine.output_bytes(100, 10, weighted=True) == 100 * 8 + 10 * config.index_entry_bytes

    def test_cpu_time_scales_with_bytes(self, config):
        engine = CompactionEngine(config)
        assert engine.cpu_time(config.cpu_compaction_throughput) == pytest.approx(1.0)
        assert engine.cpu_time(0) == 0.0

    def test_compaction_slower_than_pcie(self, config):
        # The paper's premise: compaction throughput is well below the PCIe
        # explicit-copy bandwidth, otherwise it would always be worth it.
        assert config.cpu_compaction_throughput < config.pcie_bandwidth


class TestKernelModel:
    def test_zero_work(self, config):
        model = KernelModel(config)
        assert model.kernel_time(0, num_kernels=0) == 0.0

    def test_launch_overhead_only(self, config):
        model = KernelModel(config)
        assert model.kernel_time(0, num_kernels=3) == pytest.approx(3 * config.gpu_kernel_launch_overhead)

    def test_monotonic_in_edges(self, config):
        model = KernelModel(config)
        times = [model.kernel_time(edges) for edges in (10, 1000, 100000, 10_000_000)]
        assert all(earlier < later for earlier, later in zip(times, times[1:]))

    def test_more_kernels_cost_more(self, config):
        model = KernelModel(config)
        assert model.kernel_time(1000, num_kernels=4) > model.kernel_time(1000, num_kernels=1)

    def test_occupancy_saturates(self, config):
        model = KernelModel(config)
        assert model.occupancy(1 << 20) == 1.0
        assert 0.0 < model.occupancy(10) < 1.0

    def test_large_kernel_matches_peak_throughput(self, config):
        model = KernelModel(config)
        edges = 1 << 26
        assert model.kernel_time(edges) == pytest.approx(edges / config.gpu_edge_throughput, rel=0.01)

    def test_gpu_much_faster_than_cpu(self, config):
        model = KernelModel(config)
        edges = 1 << 22
        assert model.cpu_processing_time(edges) > 10 * model.kernel_time(edges)

    def test_cpu_zero_edges(self, config):
        assert KernelModel(config).cpu_processing_time(0) == 0.0

    def test_device_scan_time_positive(self, config):
        model = KernelModel(config)
        assert model.device_scan_time(0) == 0.0
        assert model.device_scan_time(256) > 0.0
