"""Unit tests for the benchmark workload harness."""

import numpy as np
import pytest

from repro.bench.workloads import (
    PAPER_EDGE_COUNTS,
    batch_sources,
    build_workload,
    paper_datasets,
    pick_source,
    run_workload,
    scaled_config_for,
)
from repro.graph.generators import rmat_graph
from repro.sim.config import gtx_1080, gtx_2080ti


class TestScaledConfig:
    def test_known_dataset_scales_memory(self):
        graph = rmat_graph(500, 5000, seed=1, name="SK")
        config = scaled_config_for(graph, "SK")
        expected_scale = graph.num_edges / PAPER_EDGE_COUNTS["SK"]
        assert config.gpu_memory_bytes < gtx_2080ti().gpu_memory_bytes * expected_scale
        assert config.gpu_memory_bytes > 0

    def test_unknown_graph_gets_half_edge_data(self):
        graph = rmat_graph(500, 5000, seed=1, name="custom")
        config = scaled_config_for(graph)
        assert config.gpu_memory_bytes == pytest.approx(graph.edge_data_bytes // 2, abs=2)

    def test_preset_by_name(self):
        graph = rmat_graph(200, 1000, seed=1, name="SK")
        config = scaled_config_for(graph, "SK", preset="GTX-1080")
        reference = scaled_config_for(graph, "SK", preset=gtx_1080())
        assert config.gpu_memory_bytes == reference.gpu_memory_bytes

    def test_launch_overhead_scaled_down(self):
        graph = rmat_graph(200, 1000, seed=1, name="SK")
        config = scaled_config_for(graph, "SK")
        assert config.gpu_kernel_launch_overhead < gtx_2080ti().gpu_kernel_launch_overhead


class TestBuildWorkload:
    def test_paper_datasets_order(self):
        assert paper_datasets() == ["SK", "TW", "FK", "UK", "FS"]

    def test_sssp_workload_weighted_with_source(self):
        workload = build_workload("SK", "sssp", scale=0.1)
        assert workload.graph.is_weighted
        assert workload.source is not None
        assert workload.algorithm == "SSSP"

    def test_pagerank_workload_no_source(self):
        workload = build_workload("TW", "pagerank", scale=0.1)
        assert workload.source is None
        assert not workload.graph.is_weighted

    def test_cc_workload_symmetrized(self):
        workload = build_workload("FK", "cc", scale=0.1)
        np.testing.assert_array_equal(workload.graph.out_degrees, workload.graph.in_degrees)

    def test_prebuilt_graph_reused(self):
        graph = rmat_graph(300, 3000, seed=2, name="custom")
        workload = build_workload("custom", "bfs", graph=graph)
        assert workload.graph is graph

    def test_prebuilt_graph_gets_weights_for_sssp(self):
        graph = rmat_graph(300, 3000, seed=2, name="custom")
        workload = build_workload("custom", "sssp", graph=graph)
        assert workload.graph.is_weighted

    def test_pick_source_highest_degree(self):
        graph = rmat_graph(100, 700, seed=3)
        assert pick_source(graph) == int(np.argmax(graph.out_degrees))

    def test_pick_source_empty_graph(self):
        from repro.graph.csr import CSRGraph

        with pytest.raises(ValueError):
            pick_source(CSRGraph.empty(0))


class TestRunWorkload:
    def test_run_returns_result(self):
        workload = build_workload("SK", "bfs", scale=0.05)
        result = run_workload("emogi", workload)
        assert result.converged
        assert result.system == "EMOGI"

    def test_same_workload_same_answers_across_systems(self):
        workload = build_workload("TW", "bfs", scale=0.05)
        first = workload.run("hytgraph")
        second = workload.run("subway")
        np.testing.assert_allclose(
            np.where(np.isinf(first.values), -1, first.values),
            np.where(np.isinf(second.values), -1, second.values),
        )


class TestMultiDeviceGuards:
    @pytest.mark.parametrize("system", ["grus", "imptm-um", "galois"])
    def test_workload_run_refuses_incapable_system(self, system):
        workload = build_workload("SK", "bfs", scale=0.05, num_devices=2)
        with pytest.raises(ValueError, match="no multi-device execution path"):
            workload.run(system)

    def test_workload_run_batch_refuses_incapable_system(self):
        workload = build_workload("SK", "sssp", scale=0.05, num_devices=2)
        with pytest.raises(ValueError, match="no multi-device execution path"):
            workload.run_batch("grus", [0, 1])

    def test_capable_system_passes_guard(self):
        workload = build_workload("SK", "bfs", scale=0.05, num_devices=2)
        workload.check_multi_device("hytgraph")  # no exception


class TestBatchWorkloads:
    def test_batch_sources_distinct_and_by_degree(self):
        workload = build_workload("SK", "sssp", scale=0.05)
        sources = batch_sources(workload.graph, 5)
        assert len(set(sources)) == 5
        degrees = workload.graph.out_degrees[sources]
        assert all(degrees[i] >= degrees[i + 1] for i in range(len(degrees) - 1))
        with pytest.raises(ValueError):
            batch_sources(workload.graph, 0)
        with pytest.raises(ValueError):
            batch_sources(workload.graph, workload.graph.num_vertices + 1)

    def test_run_batch_matches_sequential_values(self):
        workload = build_workload("SK", "sssp", scale=0.05)
        sources = batch_sources(workload.graph, 3)
        batch = workload.run_batch("hytgraph", sources)
        sequential = workload.run_sequential("hytgraph", sources)
        assert batch.num_queries == 3
        for alone, batched in zip(sequential, batch.results):
            np.testing.assert_array_equal(alone.values, batched.values)

    def test_batch_sources_seeded_sampling_is_deterministic(self):
        workload = build_workload("SK", "sssp", scale=0.05)
        first = batch_sources(workload.graph, 6, seed=42)
        second = batch_sources(workload.graph, 6, seed=42)
        other = batch_sources(workload.graph, 6, seed=43)
        assert first == second
        assert len(set(first)) == 6
        assert first != other  # different seeds sample different sources
        # Sampled sources are usable traversal starts.
        assert all(workload.graph.out_degrees[s] > 0 for s in first)

    def test_make_queries_counts_and_seeds(self):
        workload = build_workload("SK", "sssp", scale=0.05)
        queries = workload.make_queries(count=4, seed=7)
        assert len(queries) == 4
        assert [s for _, s in queries] == batch_sources(workload.graph, 4, seed=7)
        explicit = workload.make_queries([1, 2])
        assert [s for _, s in explicit] == [1, 2]
        with pytest.raises(ValueError, match="sources or a count"):
            workload.make_queries()

    def test_make_queries_sourceless_algorithm(self):
        workload = build_workload("SK", "pagerank", scale=0.05)
        queries = workload.make_queries(count=3, seed=5)
        assert [s for _, s in queries] == [None, None, None]

    def test_make_queries_rejects_sources_combined_with_sampling(self):
        """Explicit sources + count/seed used to silently drop the sampling."""
        workload = build_workload("SK", "sssp", scale=0.05)
        with pytest.raises(ValueError, match="not both"):
            workload.make_queries([1, 2], count=4)
        with pytest.raises(ValueError, match="not both"):
            workload.make_queries([1, 2], seed=7)


class TestDeprecationShims:
    """The old entry points warn exactly once, pointing at GraphService."""

    @pytest.fixture(autouse=True)
    def _reset_warned(self):
        from repro.bench import workloads

        workloads._DEPRECATION_WARNED.clear()
        yield
        workloads._DEPRECATION_WARNED.clear()

    MESSAGE = r"deprecated; submit a repro\.service\.QueryRequest to a repro\.service\.GraphService"

    def test_run_warns_once_and_matches_service(self):
        import warnings

        workload = build_workload("SK", "bfs", scale=0.05)
        with pytest.warns(DeprecationWarning, match="Workload.run is " + self.MESSAGE):
            result = workload.run("emogi")
        assert result.converged
        # Second call: the shim stays quiet (one warning per entry point).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            workload.run("emogi")

    def test_run_batch_warns(self):
        workload = build_workload("SK", "sssp", scale=0.05)
        with pytest.warns(DeprecationWarning, match="Workload.run_batch is " + self.MESSAGE):
            batch = workload.run_batch("hytgraph", [0, 1])
        assert batch.num_queries == 2

    def test_run_sequential_warns(self):
        workload = build_workload("SK", "sssp", scale=0.05)
        with pytest.warns(
            DeprecationWarning, match="Workload.run_sequential is " + self.MESSAGE
        ):
            results = workload.run_sequential("hytgraph", [0, 1])
        assert len(results) == 2

    def test_adapters_match_direct_service(self):
        """The shims are pure adapters: same values as the service path."""
        from repro.service import GraphService, QueryRequest

        workload = build_workload("SK", "bfs", scale=0.05)
        with pytest.warns(DeprecationWarning):
            via_shim = workload.run("hytgraph")
        service = GraphService.for_workload(workload, "hytgraph")
        direct = service.run(QueryRequest(algorithm="bfs", source=workload.source))
        np.testing.assert_array_equal(via_shim.values, direct.values)
        assert via_shim.per_iteration_times() == direct.per_iteration_times()
