"""Unit tests for chunk-based edge-balanced partitioning."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import power_law_graph, star_graph
from repro.graph.partition import EdgePartition, Partitioning, partition_by_bytes, partition_by_count


def check_tiling(graph, partitioning):
    """Partitions must tile the vertex and edge ranges without gaps or overlap."""
    assert partitioning[0].vertex_start == 0
    assert partitioning[-1].vertex_end == graph.num_vertices
    assert partitioning[0].edge_start == 0
    assert partitioning[-1].edge_end == graph.num_edges
    for left, right in zip(partitioning.partitions[:-1], partitioning.partitions[1:]):
        assert left.vertex_end == right.vertex_start
        assert left.edge_end == right.edge_start


class TestPartitionByBytes:
    def test_tiles_graph(self, medium_power_law_graph):
        partitioning = partition_by_bytes(medium_power_law_graph, 4096)
        check_tiling(medium_power_law_graph, partitioning)

    def test_respects_byte_budget_when_possible(self, medium_power_law_graph):
        budget = 4096
        partitioning = partition_by_bytes(medium_power_law_graph, budget)
        per_edge = medium_power_law_graph.edge_bytes_per_edge
        for partition in partitioning:
            # Either within budget or a single oversized adjacency list.
            assert partition.edge_bytes <= budget or partition.num_vertices == 1
            assert partition.edge_bytes == partition.num_edges * per_edge

    def test_single_partition_when_budget_huge(self, small_random_graph):
        partitioning = partition_by_bytes(small_random_graph, 1 << 30)
        assert partitioning.num_partitions == 1

    def test_oversized_vertex_gets_own_partition(self):
        graph = star_graph(1000)
        partitioning = partition_by_bytes(graph, 128)
        hub_partition = partitioning[partitioning.partition_of_vertex(0)]
        assert hub_partition.num_vertices >= 1
        assert hub_partition.vertex_start == 0
        check_tiling(graph, partitioning)

    def test_invalid_budget(self, small_random_graph):
        with pytest.raises(ValueError):
            partition_by_bytes(small_random_graph, 0)

    def test_empty_graph(self):
        partitioning = partition_by_bytes(CSRGraph.empty(0), 1024)
        assert partitioning.num_partitions == 0


class TestPartitionByCount:
    def test_tiles_graph(self, medium_power_law_graph):
        partitioning = partition_by_count(medium_power_law_graph, 16)
        check_tiling(medium_power_law_graph, partitioning)

    def test_partition_count_close_to_request(self, medium_rmat_graph):
        partitioning = partition_by_count(medium_rmat_graph, 16)
        assert 1 <= partitioning.num_partitions <= 16

    def test_edge_balance(self, medium_rmat_graph):
        partitioning = partition_by_count(medium_rmat_graph, 8)
        edges = partitioning.edges_per_partition()
        assert edges.sum() == medium_rmat_graph.num_edges
        # Edge-balanced: no partition is wildly larger than the ideal share
        # (hubs can force some imbalance, hence the loose bound).
        assert edges.max() <= 4 * medium_rmat_graph.num_edges / partitioning.num_partitions + edges.max() * 0

    def test_more_partitions_than_vertices(self):
        graph = power_law_graph(10, 3.0, seed=1)
        partitioning = partition_by_count(graph, 50)
        assert partitioning.num_partitions <= graph.num_vertices
        check_tiling(graph, partitioning)

    def test_invalid_count(self, small_random_graph):
        with pytest.raises(ValueError):
            partition_by_count(small_random_graph, 0)


class TestPartitioningQueries:
    def test_partition_of_vertex(self, medium_power_law_graph):
        partitioning = partition_by_count(medium_power_law_graph, 8)
        for partition in partitioning:
            for vertex in (partition.vertex_start, partition.vertex_end - 1):
                assert partitioning.partition_of_vertex(vertex) == partition.index
                assert partition.contains_vertex(vertex)

    def test_partition_of_vertices_vectorised(self, medium_power_law_graph):
        partitioning = partition_by_count(medium_power_law_graph, 8)
        vertices = np.arange(medium_power_law_graph.num_vertices)
        mapped = partitioning.partition_of_vertices(vertices)
        expected = np.array([partitioning.partition_of_vertex(int(v)) for v in vertices])
        np.testing.assert_array_equal(mapped, expected)

    def test_active_counts(self, medium_power_law_graph):
        partitioning = partition_by_count(medium_power_law_graph, 8)
        mask = np.zeros(medium_power_law_graph.num_vertices, dtype=bool)
        mask[::3] = True
        active_vertices, active_edges = partitioning.active_counts(mask)
        assert active_vertices.sum() == mask.sum()
        assert active_edges.sum() == medium_power_law_graph.out_degrees[mask].sum()
        # Per-partition counts never exceed the partition's totals.
        for partition in partitioning:
            assert active_vertices[partition.index] <= partition.num_vertices
            assert active_edges[partition.index] <= partition.num_edges

    def test_active_counts_empty_mask(self, medium_power_law_graph):
        partitioning = partition_by_count(medium_power_law_graph, 8)
        mask = np.zeros(medium_power_law_graph.num_vertices, dtype=bool)
        active_vertices, active_edges = partitioning.active_counts(mask)
        assert active_vertices.sum() == 0
        assert active_edges.sum() == 0

    def test_bytes_per_partition(self, medium_power_law_graph):
        partitioning = partition_by_count(medium_power_law_graph, 8)
        assert partitioning.bytes_per_partition().sum() == medium_power_law_graph.edge_data_bytes

    def test_iteration_and_len(self, medium_power_law_graph):
        partitioning = partition_by_count(medium_power_law_graph, 8)
        assert len(list(partitioning)) == len(partitioning) == partitioning.num_partitions


class TestValidation:
    def test_gap_rejected(self, small_random_graph):
        graph = small_random_graph
        bad = [
            EdgePartition(0, 0, 10, 0, int(graph.row_offset[10]), 0),
            EdgePartition(1, 12, graph.num_vertices, int(graph.row_offset[12]), graph.num_edges, 0),
        ]
        with pytest.raises(ValueError):
            Partitioning(graph, bad)

    def test_incomplete_cover_rejected(self, small_random_graph):
        graph = small_random_graph
        bad = [EdgePartition(0, 0, 10, 0, int(graph.row_offset[10]), 0)]
        with pytest.raises(ValueError):
            Partitioning(graph, bad)
