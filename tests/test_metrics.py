"""Unit tests for run records and table formatting."""

import pytest

from repro.metrics.results import IterationStats, RunResult
from repro.metrics.tables import format_series, format_table, normalize_speedups


def make_result():
    result = RunResult(system="X", algorithm="SSSP", graph_name="g")
    result.iterations = [
        IterationStats(
            index=0,
            time=1.0,
            active_vertices=10,
            active_edges=100,
            transfer_bytes=1000,
            compaction_time=0.2,
            transfer_time=0.5,
            kernel_time=0.3,
            processed_edges=100,
            engine_partitions={"ExpTM-F": 2},
            engine_tasks={"ExpTM-F": 1},
        ),
        IterationStats(
            index=1,
            time=2.0,
            active_vertices=20,
            active_edges=200,
            transfer_bytes=3000,
            compaction_time=0.0,
            transfer_time=1.0,
            kernel_time=0.5,
            processed_edges=250,
            engine_partitions={"ImpTM-ZC": 3, "ExpTM-F": 1},
            engine_tasks={"ImpTM-ZC": 1, "ExpTM-F": 1},
        ),
    ]
    result.converged = True
    result.preprocessing_time = 0.5
    return result


class TestRunResult:
    def test_aggregates(self):
        result = make_result()
        assert result.num_iterations == 2
        assert result.total_time == pytest.approx(3.0)
        assert result.total_time_with_preprocessing == pytest.approx(3.5)
        assert result.total_transfer_bytes == 4000
        assert result.total_compaction_time == pytest.approx(0.2)
        assert result.total_transfer_time == pytest.approx(1.5)
        assert result.total_kernel_time == pytest.approx(0.8)
        assert result.total_processed_edges == 350

    def test_transfer_ratio(self):
        result = make_result()
        assert result.transfer_ratio(2000) == pytest.approx(2.0)
        assert result.transfer_ratio(0) == 0.0

    def test_per_iteration_times(self):
        assert make_result().per_iteration_times() == [1.0, 2.0]

    def test_engine_mix_fractions(self):
        mix = make_result().engine_mix()
        assert mix[0] == {"ExpTM-F": 1.0}
        assert mix[1]["ImpTM-ZC"] == pytest.approx(0.75)
        assert mix[1]["ExpTM-F"] == pytest.approx(0.25)

    def test_breakdown(self):
        breakdown = make_result().breakdown()
        assert breakdown == {
            "compaction": pytest.approx(0.2),
            "transfer": pytest.approx(1.5),
            "computation": pytest.approx(0.8),
        }

    def test_iteration_breakdown(self):
        stats = make_result().iterations[0]
        assert stats.breakdown()["transfer"] == pytest.approx(0.5)

    def test_summary_row(self):
        row = make_result().summary_row()
        assert row["system"] == "X"
        assert row["iterations"] == 2
        assert row["converged"] is True

    def test_empty_result(self):
        result = RunResult(system="X", algorithm="PR", graph_name="g")
        assert result.total_time == 0.0
        assert result.engine_mix() == []


class TestTables:
    def test_format_table_alignment(self):
        rows = [{"system": "HyTGraph", "time": 1.2345}, {"system": "Subway", "time": 10.0}]
        text = format_table(rows, title="Table V")
        lines = text.splitlines()
        assert lines[0] == "Table V"
        assert "system" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert format_table([]) == ""
        assert format_table([], title="T") == "T\n"

    def test_format_table_rejects_new_columns(self):
        with pytest.raises(ValueError):
            format_table([{"a": 1}, {"a": 2, "b": 3}])

    def test_format_table_missing_column_ok(self):
        text = format_table([{"a": 1, "b": 2}, {"a": 3}])
        assert "3" in text

    def test_format_series(self):
        text = format_series({"PR-actEdge": [1.0, 0.5, 0.25]}, title="Figure 3a")
        assert text.startswith("Figure 3a")
        assert "PR-actEdge" in text

    def test_normalize_speedups(self):
        speedups = normalize_speedups({"Subway": 10.0, "HyTGraph": 2.0}, baseline="Subway")
        assert speedups["Subway"] == 1.0
        assert speedups["HyTGraph"] == 5.0

    def test_normalize_speedups_missing_baseline(self):
        with pytest.raises(KeyError):
            normalize_speedups({"a": 1.0}, baseline="b")

    def test_normalize_speedups_zero_baseline(self):
        with pytest.raises(ValueError):
            normalize_speedups({"a": 0.0}, baseline="a")

    def test_normalize_speedups_zero_entry(self):
        speedups = normalize_speedups({"a": 1.0, "b": 0.0}, baseline="a")
        assert speedups["b"] == float("inf")


class TestDegenerateBatchMetrics:
    """Zero/near-zero baselines must not produce inf/nan (tiny graphs)."""

    def _batch(self, makespan):
        from repro.metrics.results import BatchResult

        return BatchResult(system="X", algorithm="PR", graph_name="g", makespan=makespan)

    def test_queries_per_second_zero_makespan(self):
        assert self._batch(0.0).queries_per_second == 0.0
        assert self._batch(1e-15).queries_per_second == 0.0

    def test_amortization_vs_zero_baseline_is_finite(self):
        import math

        stats = self._batch(0.0).amortization_vs([])
        assert stats["degenerate"] is True
        assert math.isfinite(stats["speedup"]) and stats["speedup"] == 1.0
        assert stats["sequential_time"] == 0.0

    def test_amortization_vs_zero_sequential_time(self):
        import math

        zero_run = RunResult(system="X", algorithm="PR", graph_name="g")
        stats = self._batch(2.0).amortization_vs([zero_run])
        assert stats["degenerate"] is True
        assert math.isfinite(stats["speedup"])

    def test_amortization_vs_normal_case_unchanged(self):
        result = make_result()
        stats = self._batch(1.5).amortization_vs([result])
        assert stats["degenerate"] is False
        assert stats["speedup"] == pytest.approx(result.total_time / 1.5)
