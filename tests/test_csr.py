"""Unit tests for the CSR graph structure."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph


class TestConstruction:
    def test_from_edges_basic(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 2), (1, 2)], num_vertices=3)
        assert graph.num_vertices == 3
        assert graph.num_edges == 3
        assert list(graph.neighbors(0)) == [1, 2]
        assert list(graph.neighbors(1)) == [2]
        assert list(graph.neighbors(2)) == []

    def test_from_edges_infers_vertex_count(self):
        graph = CSRGraph.from_edges([(0, 4), (4, 2)])
        assert graph.num_vertices == 5

    def test_from_edges_with_weights(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 0)], num_vertices=2, weights=[2.5, 1.5])
        assert graph.is_weighted
        assert graph.edge_weights(0)[0] == 2.5
        assert graph.edge_weights(1)[0] == 1.5

    def test_from_edges_sorts_neighbors(self):
        graph = CSRGraph.from_edges([(0, 3), (0, 1), (0, 2)], num_vertices=4)
        assert list(graph.neighbors(0)) == [1, 2, 3]

    def test_from_edges_deduplicate(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 1), (1, 0)], num_vertices=2, deduplicate=True)
        assert graph.num_edges == 2

    def test_from_edges_keeps_duplicates_by_default(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 1)], num_vertices=2)
        assert graph.num_edges == 2
        assert list(graph.neighbors(0)) == [1, 1]

    def test_from_adjacency(self):
        graph = CSRGraph.from_adjacency({0: [1, 2], 2: [0]})
        assert graph.num_vertices == 3
        assert graph.num_edges == 3
        assert list(graph.neighbors(2)) == [0]

    def test_empty_graph(self):
        graph = CSRGraph.empty(5)
        assert graph.num_vertices == 5
        assert graph.num_edges == 0
        assert graph.average_degree == 0.0

    def test_empty_graph_no_vertices(self):
        graph = CSRGraph.empty(0)
        assert graph.num_vertices == 0
        assert graph.average_degree == 0.0

    def test_weights_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([(0, 1)], num_vertices=2, weights=[1.0, 2.0])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([(0, 5)], num_vertices=3)

    def test_invalid_row_offset_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0, 1]))

    def test_decreasing_row_offset_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1]))

    def test_row_offset_edge_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1, 3]), np.array([0]))

    def test_column_index_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([5]))


class TestProperties:
    def test_degrees(self, paper_graph):
        assert list(paper_graph.out_degrees) == [2, 2, 2, 2, 1, 1]
        assert paper_graph.out_degree(0) == 2
        assert list(paper_graph.in_degrees) == [1, 1, 2, 2, 2, 2]

    def test_average_degree(self, paper_graph):
        assert paper_graph.average_degree == pytest.approx(10 / 6)

    def test_edge_bytes(self, paper_graph):
        assert paper_graph.edge_bytes_per_edge == 8  # neighbor + weight
        assert paper_graph.edge_data_bytes == 80
        unweighted = paper_graph.without_weights()
        assert unweighted.edge_bytes_per_edge == 4

    def test_edge_slice(self, paper_graph):
        start, end = paper_graph.edge_slice(1)
        assert (start, end) == (2, 4)

    def test_iter_edges(self, paper_graph):
        edges = list(paper_graph.iter_edges())
        assert len(edges) == 10
        assert edges[0] == (0, 1, 2.0)

    def test_edge_sources(self, paper_graph):
        sources = paper_graph.edge_sources()
        assert list(sources[:4]) == [0, 0, 1, 1]
        assert sources.size == paper_graph.num_edges

    def test_edge_weights_unweighted_default_one(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 2)], num_vertices=3)
        np.testing.assert_array_equal(graph.edge_weights(0), [1.0, 1.0])


class TestTransformations:
    def test_with_weights_scalar(self, paper_graph):
        graph = paper_graph.with_weights(2.0)
        assert np.all(graph.edge_value == 2.0)

    def test_without_weights(self, paper_graph):
        graph = paper_graph.without_weights()
        assert not graph.is_weighted

    def test_reverse_swaps_degrees(self, paper_graph):
        reversed_graph = paper_graph.reverse()
        np.testing.assert_array_equal(reversed_graph.out_degrees, paper_graph.in_degrees)
        np.testing.assert_array_equal(reversed_graph.in_degrees, paper_graph.out_degrees)

    def test_reverse_preserves_edge_set(self, paper_graph):
        reversed_graph = paper_graph.reverse()
        original = {(src, dst) for src, dst, _ in paper_graph.iter_edges()}
        flipped = {(dst, src) for src, dst, _ in reversed_graph.iter_edges()}
        assert original == flipped

    def test_symmetrize_contains_both_directions(self, paper_graph):
        symmetric = paper_graph.symmetrize()
        edges = {(src, dst) for src, dst, _ in symmetric.iter_edges()}
        for src, dst, _ in paper_graph.iter_edges():
            assert (src, dst) in edges
            assert (dst, src) in edges

    def test_symmetrize_degrees_balanced(self, paper_graph):
        symmetric = paper_graph.symmetrize()
        np.testing.assert_array_equal(symmetric.out_degrees, symmetric.in_degrees)

    def test_permute_identity(self, paper_graph):
        identity = np.arange(paper_graph.num_vertices)
        permuted = paper_graph.permute(identity)
        np.testing.assert_array_equal(permuted.row_offset, paper_graph.row_offset)
        np.testing.assert_array_equal(permuted.column_index, paper_graph.column_index)

    def test_permute_preserves_edge_structure(self, paper_graph):
        order = np.array([3, 1, 4, 0, 5, 2])
        permuted = paper_graph.permute(order)
        # old vertex order[i] becomes new vertex i
        new_id = np.empty(6, dtype=int)
        new_id[order] = np.arange(6)
        original = {(new_id[src], new_id[dst], weight) for src, dst, weight in paper_graph.iter_edges()}
        relabelled = set(permuted.iter_edges())
        assert original == relabelled

    def test_permute_rejects_non_permutation(self, paper_graph):
        with pytest.raises(ValueError):
            paper_graph.permute(np.array([0, 0, 1, 2, 3, 4]))

    def test_to_networkx(self, paper_graph):
        nx_graph = paper_graph.to_networkx()
        assert nx_graph.number_of_nodes() == 6
        assert nx_graph.number_of_edges() == 10
        assert nx_graph[0][1]["weight"] == 2.0
