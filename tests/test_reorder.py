"""Unit tests for hub scoring and hub sorting (Formula 4, Section VI-A)."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import star_graph
from repro.graph.reorder import (
    apply_vertex_order,
    degree_sort_order,
    hub_scores,
    hub_sort,
    hub_sort_order,
)


class TestHubScores:
    def test_formula_on_small_graph(self):
        # 0 -> 1, 1 -> 2, 2 -> 1 : vertex 1 has Do=1, Di=2 (the hub).
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 1)], num_vertices=3)
        scores = hub_scores(graph)
        do_max = graph.out_degrees.max()
        di_max = graph.in_degrees.max()
        expected = graph.out_degrees * graph.in_degrees / (do_max * di_max)
        np.testing.assert_allclose(scores, expected)
        assert scores.argmax() == 1

    def test_scores_in_unit_interval(self, medium_power_law_graph):
        scores = hub_scores(medium_power_law_graph)
        assert scores.min() >= 0.0
        assert scores.max() <= 1.0
        assert scores.max() > 0.0

    def test_isolated_graph_all_zero(self):
        graph = CSRGraph.empty(5)
        np.testing.assert_array_equal(hub_scores(graph), np.zeros(5))


class TestHubSortOrder:
    def test_is_permutation(self, medium_power_law_graph):
        order = hub_sort_order(medium_power_law_graph, 0.08)
        np.testing.assert_array_equal(np.sort(order), np.arange(medium_power_law_graph.num_vertices))

    def test_hubs_first(self, medium_power_law_graph):
        fraction = 0.1
        order = hub_sort_order(medium_power_law_graph, fraction)
        scores = hub_scores(medium_power_law_graph)
        num_hubs = int(round(medium_power_law_graph.num_vertices * fraction))
        front_scores = scores[order[:num_hubs]]
        rest_scores = scores[order[num_hubs:]]
        assert front_scores.min() >= rest_scores.max() - 1e-12

    def test_non_hubs_keep_natural_order(self, medium_power_law_graph):
        order = hub_sort_order(medium_power_law_graph, 0.08)
        num_hubs = int(round(medium_power_law_graph.num_vertices * 0.08))
        rest = order[num_hubs:]
        assert np.all(np.diff(rest) > 0)

    def test_zero_fraction_is_identity(self, medium_power_law_graph):
        order = hub_sort_order(medium_power_law_graph, 0.0)
        np.testing.assert_array_equal(order, np.arange(medium_power_law_graph.num_vertices))

    def test_invalid_fraction(self, medium_power_law_graph):
        with pytest.raises(ValueError):
            hub_sort_order(medium_power_law_graph, 1.5)

    def test_star_hub_is_center(self):
        # In a star with back-edges the center is the unique hub.
        graph = star_graph(20).symmetrize()
        order = hub_sort_order(graph, 0.05)
        assert order[0] == 0


class TestDegreeSortOrder:
    def test_descending(self, medium_power_law_graph):
        order = degree_sort_order(medium_power_law_graph)
        degrees = medium_power_law_graph.out_degrees[order]
        assert np.all(np.diff(degrees) <= 0)

    def test_ascending(self, medium_power_law_graph):
        order = degree_sort_order(medium_power_law_graph, descending=False)
        degrees = medium_power_law_graph.out_degrees[order]
        assert np.all(np.diff(degrees) >= 0)


class TestApplyOrder:
    def test_mappings_are_inverses(self, medium_power_law_graph):
        reordered = hub_sort(medium_power_law_graph, 0.08)
        n = medium_power_law_graph.num_vertices
        np.testing.assert_array_equal(reordered.old_to_new[reordered.new_to_old], np.arange(n))
        np.testing.assert_array_equal(reordered.new_to_old[reordered.old_to_new], np.arange(n))

    def test_translate_roundtrip(self, medium_power_law_graph):
        reordered = hub_sort(medium_power_law_graph, 0.08)
        for vertex in (0, 1, medium_power_law_graph.num_vertices - 1):
            assert reordered.translate_to_old(reordered.translate_to_new(vertex)) == vertex

    def test_degree_multiset_preserved(self, medium_power_law_graph):
        reordered = hub_sort(medium_power_law_graph, 0.08)
        np.testing.assert_array_equal(
            np.sort(reordered.graph.out_degrees), np.sort(medium_power_law_graph.out_degrees)
        )

    def test_values_in_original_order(self, medium_power_law_graph):
        reordered = hub_sort(medium_power_law_graph, 0.08)
        # Values indexed by relabelled id map back so that original vertex v
        # receives the value of its relabelled counterpart.
        values_new_order = reordered.new_to_old.astype(np.float64)
        restored = reordered.values_in_original_order(values_new_order)
        np.testing.assert_array_equal(restored, np.arange(medium_power_law_graph.num_vertices))

    def test_num_hubs_recorded(self, medium_power_law_graph):
        reordered = hub_sort(medium_power_law_graph, 0.1)
        assert reordered.num_hubs == int(round(medium_power_law_graph.num_vertices * 0.1))

    def test_hub_sorted_graph_front_has_high_degree_mass(self, medium_power_law_graph):
        reordered = hub_sort(medium_power_law_graph, 0.08)
        n = medium_power_law_graph.num_vertices
        front = reordered.graph.out_degrees[: max(1, n // 10)].sum()
        back = reordered.graph.out_degrees[-max(1, n // 10):].sum()
        assert front > back

    def test_apply_vertex_order_explicit(self, paper_graph):
        order = np.array([5, 4, 3, 2, 1, 0])
        reordered = apply_vertex_order(paper_graph, order)
        assert reordered.graph.num_edges == paper_graph.num_edges
        assert reordered.translate_to_new(5) == 0
