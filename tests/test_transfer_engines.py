"""Unit tests for the four transfer engines (Figure 2)."""

import numpy as np
import pytest

from repro.graph.partition import partition_by_count
from repro.sim.config import HardwareConfig
from repro.transfer.base import EngineKind
from repro.transfer.explicit_compaction import ExplicitCompactionEngine
from repro.transfer.explicit_filter import ExplicitFilterEngine
from repro.transfer.unified_memory import UnifiedMemoryEngine
from repro.transfer.zero_copy import ZeroCopyEngine


@pytest.fixture
def graph(medium_power_law_graph):
    return medium_power_law_graph


@pytest.fixture
def partitioning(graph):
    return partition_by_count(graph, 8)


def active_in_partition(graph, partition, stride=2):
    vertices = np.arange(partition.vertex_start, partition.vertex_end, stride)
    return vertices[graph.out_degrees[vertices] > 0]


class TestExplicitFilter:
    def test_transfers_whole_partition(self, graph, partitioning, config):
        engine = ExplicitFilterEngine(graph, config)
        partition = partitioning[0]
        active = active_in_partition(graph, partition)
        outcome = engine.transfer(partition, active)
        assert outcome.engine == EngineKind.EXP_FILTER
        assert outcome.bytes_transferred == partition.edge_bytes
        assert outcome.transfer_time > 0
        assert not outcome.overlapped
        assert outcome.cpu_time == 0.0

    def test_inactive_partition_filtered_out(self, graph, partitioning, config):
        engine = ExplicitFilterEngine(graph, config)
        outcome = engine.transfer(partitioning[0], np.array([], dtype=np.int64))
        assert outcome.bytes_transferred == 0
        assert outcome.transfer_time == 0.0

    def test_redundant_bytes_reported(self, graph, partitioning, config):
        engine = ExplicitFilterEngine(graph, config)
        partition = partitioning[0]
        active = active_in_partition(graph, partition, stride=5)
        outcome = engine.transfer(partition, active)
        assert outcome.detail["redundant_bytes"] >= 0
        assert outcome.detail["active_edges"] <= outcome.detail["partition_edges"]

    def test_cost_independent_of_active_count(self, graph, partitioning, config):
        # Filter ships the whole partition whether 1 or 100 vertices are
        # active — the redundancy problem of Figure 3(a).
        engine = ExplicitFilterEngine(graph, config)
        partition = partitioning[0]
        single = engine.transfer(partition, active_in_partition(graph, partition)[:1])
        many = engine.transfer(partition, active_in_partition(graph, partition))
        assert single.bytes_transferred == many.bytes_transferred
        assert single.transfer_time == many.transfer_time


class TestExplicitCompaction:
    def test_bytes_match_formula(self, graph, partitioning, config):
        engine = ExplicitCompactionEngine(graph, config)
        partition = partitioning[0]
        active = active_in_partition(graph, partition)
        outcome = engine.transfer(partition, active)
        d1 = graph.edge_bytes_per_edge
        expected = int(graph.out_degrees[active].sum()) * d1 + active.size * config.index_entry_bytes
        assert outcome.bytes_transferred == expected
        assert outcome.cpu_time > 0
        assert not outcome.overlapped

    def test_less_data_than_filter_when_sparse(self, graph, partitioning, config):
        partition = partitioning[0]
        active = active_in_partition(graph, partition, stride=7)
        filter_bytes = ExplicitFilterEngine(graph, config).transfer(partition, active).bytes_transferred
        compaction_bytes = ExplicitCompactionEngine(graph, config).transfer(partition, active).bytes_transferred
        assert compaction_bytes < filter_bytes

    def test_materialized_subgraph(self, graph, partitioning, config):
        engine = ExplicitCompactionEngine(graph, config, materialize=True)
        partition = partitioning[0]
        active = active_in_partition(graph, partition)
        engine.transfer(partition, active)
        assert engine.last_subgraph is not None
        assert engine.last_subgraph.num_vertices == active.size

    def test_empty_active(self, graph, partitioning, config):
        engine = ExplicitCompactionEngine(graph, config)
        outcome = engine.transfer(partitioning[0], np.array([], dtype=np.int64))
        assert outcome.bytes_transferred == 0
        assert outcome.cpu_time == 0.0


class TestZeroCopy:
    def test_overlapped_and_fine_grained(self, graph, partitioning, config):
        engine = ZeroCopyEngine(graph, config)
        partition = partitioning[0]
        active = active_in_partition(graph, partition)
        outcome = engine.transfer(partition, active)
        assert outcome.engine == EngineKind.IMP_ZERO_COPY
        assert outcome.overlapped
        assert outcome.cpu_time == 0.0
        assert outcome.detail["requests"] >= active.size
        assert outcome.bytes_transferred == int(graph.out_degrees[active].sum()) * graph.edge_bytes_per_edge

    def test_empty_active(self, graph, partitioning, config):
        engine = ZeroCopyEngine(graph, config)
        outcome = engine.transfer(partitioning[0], np.array([], dtype=np.int64))
        assert outcome.bytes_transferred == 0

    def test_scales_with_active_set(self, graph, partitioning, config):
        engine = ZeroCopyEngine(graph, config)
        partition = partitioning[0]
        few = engine.transfer(partition, active_in_partition(graph, partition, stride=8))
        many = engine.transfer(partition, active_in_partition(graph, partition, stride=1))
        assert few.bytes_transferred <= many.bytes_transferred
        assert few.transfer_time <= many.transfer_time


class TestUnifiedMemory:
    def test_first_access_faults_then_hits(self, graph, partitioning, config):
        engine = UnifiedMemoryEngine(graph, config)
        partition = partitioning[0]
        active = active_in_partition(graph, partition)
        cold = engine.transfer(partition, active)
        warm = engine.transfer(partition, active)
        assert cold.detail["page_faults"] > 0
        assert warm.detail["page_faults"] == 0
        assert warm.bytes_transferred == 0
        assert warm.transfer_time == 0.0

    def test_reset_clears_cache(self, graph, partitioning, config):
        engine = UnifiedMemoryEngine(graph, config)
        partition = partitioning[0]
        active = active_in_partition(graph, partition)
        engine.transfer(partition, active)
        engine.reset()
        again = engine.transfer(partition, active)
        assert again.detail["page_faults"] > 0

    def test_small_cache_evicts(self, graph, partitioning):
        config = HardwareConfig(gpu_memory_bytes=2 * 4096)
        engine = UnifiedMemoryEngine(graph, config)
        for partition in partitioning:
            active = active_in_partition(graph, partition)
            if active.size:
                engine.transfer(partition, active)
        assert engine.cache.stats.evictions > 0

    def test_transfers_whole_pages(self, graph, partitioning, config):
        engine = UnifiedMemoryEngine(graph, config)
        partition = partitioning[0]
        active = active_in_partition(graph, partition, stride=11)
        outcome = engine.transfer(partition, active)
        assert outcome.bytes_transferred % config.um_page_bytes == 0
        # Page granularity moves at least as much data as the active edges.
        assert outcome.bytes_transferred >= int(graph.out_degrees[active].sum()) * graph.edge_bytes_per_edge or outcome.detail["page_hits"] > 0

    def test_empty_active(self, graph, partitioning, config):
        engine = UnifiedMemoryEngine(graph, config)
        outcome = engine.transfer(partitioning[0], np.array([], dtype=np.int64))
        assert outcome.bytes_transferred == 0
