"""Correctness tests for the vertex programs against CPU references.

These run the programs synchronously (processing the whole frontier each
iteration) and compare against SciPy / power-iteration references: the
answers must be exact regardless of graph shape.
"""

import numpy as np
import pytest

from repro.algorithms import ALGORITHMS, make_algorithm, reference
from repro.algorithms.base import gather_edge_indices
from repro.algorithms.bfs import BFS
from repro.algorithms.cc import ConnectedComponents
from repro.algorithms.pagerank import DeltaPageRank
from repro.algorithms.php import PHP
from repro.algorithms.sssp import SSSP
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_graph, path_graph, star_graph

from tests.conftest import assert_distances_equal


def run_synchronously(program, graph, source=None, max_iterations=10_000):
    """Reference executor: process the entire frontier every iteration."""
    state = program.create_state(graph, source)
    frontier = program.initial_frontier(graph, state, source)
    pending = frontier.mask.copy()
    for _ in range(max_iterations):
        active = np.nonzero(pending)[0]
        if active.size == 0:
            break
        pending[active] = False
        newly = program.process(graph, state, active)
        if newly.size:
            pending[newly] = True
    return program.vertex_result(state)


class TestGatherEdgeIndices:
    def test_matches_manual_slices(self, paper_graph):
        edge_indices, sources = gather_edge_indices(paper_graph, np.array([1, 3]))
        expected_indices = list(range(2, 4)) + list(range(6, 8))
        np.testing.assert_array_equal(edge_indices, expected_indices)
        np.testing.assert_array_equal(sources, [1, 1, 3, 3])

    def test_empty_input(self, paper_graph):
        edge_indices, sources = gather_edge_indices(paper_graph, np.array([], dtype=np.int64))
        assert edge_indices.size == 0
        assert sources.size == 0

    def test_zero_degree_vertices(self):
        graph = path_graph(4)
        edge_indices, sources = gather_edge_indices(graph, np.array([3]))
        assert edge_indices.size == 0


class TestSSSP:
    def test_figure1_example(self, paper_graph):
        distances = run_synchronously(SSSP(), paper_graph, source=0)
        np.testing.assert_allclose(distances, [0, 2, 4, 3, 4, 6])

    def test_random_graph_matches_dijkstra(self, medium_rmat_graph):
        source = int(np.argmax(medium_rmat_graph.out_degrees))
        distances = run_synchronously(SSSP(), medium_rmat_graph, source=source)
        assert_distances_equal(distances, reference.sssp_distances(medium_rmat_graph, source))

    def test_disconnected_vertices_stay_infinite(self):
        graph = CSRGraph.from_edges([(0, 1)], num_vertices=4, weights=[3.0])
        distances = run_synchronously(SSSP(), graph, source=0)
        assert distances[1] == 3.0
        assert np.isinf(distances[2]) and np.isinf(distances[3])

    def test_requires_weights(self):
        graph = path_graph(4)
        with pytest.raises(ValueError):
            run_synchronously(SSSP(), graph, source=0)

    def test_requires_source(self, paper_graph):
        with pytest.raises(ValueError):
            SSSP().create_state(paper_graph, None)

    def test_invalid_source(self, paper_graph):
        with pytest.raises(ValueError):
            SSSP().create_state(paper_graph, 99)

    def test_grid_graph(self):
        graph = grid_graph(6, 6, weighted=True, seed=3)
        distances = run_synchronously(SSSP(), graph, source=0)
        assert_distances_equal(distances, reference.sssp_distances(graph, 0))


class TestBFS:
    def test_levels_on_path(self):
        graph = path_graph(6)
        levels = run_synchronously(BFS(), graph, source=0)
        np.testing.assert_allclose(levels, [0, 1, 2, 3, 4, 5])

    def test_random_graph_matches_reference(self, medium_power_law_graph):
        graph = medium_power_law_graph.without_weights()
        source = int(np.argmax(graph.out_degrees))
        levels = run_synchronously(BFS(), graph, source=source)
        assert_distances_equal(levels, reference.bfs_levels(graph, source))

    def test_star_graph(self):
        graph = star_graph(10)
        levels = run_synchronously(BFS(), graph, source=0)
        assert levels[0] == 0
        np.testing.assert_allclose(levels[1:], 1)


class TestConnectedComponents:
    def test_two_components(self):
        graph = CSRGraph.from_edges(
            [(0, 1), (1, 0), (1, 2), (2, 1), (3, 4), (4, 3)], num_vertices=5
        )
        labels = run_synchronously(ConnectedComponents(), graph)
        np.testing.assert_allclose(labels, [0, 0, 0, 3, 3])

    def test_symmetrized_random_graph_matches_reference(self, medium_rmat_graph):
        graph = medium_rmat_graph.without_weights().symmetrize()
        labels = run_synchronously(ConnectedComponents(), graph)
        np.testing.assert_allclose(labels, reference.connected_component_labels(graph))

    def test_isolated_vertices_label_themselves(self):
        graph = CSRGraph.empty(4)
        labels = run_synchronously(ConnectedComponents(), graph)
        np.testing.assert_allclose(labels, [0, 1, 2, 3])


class TestDeltaPageRank:
    def test_matches_power_iteration(self, medium_rmat_graph):
        graph = medium_rmat_graph.without_weights()
        program = DeltaPageRank(tolerance=1e-9)
        ranks = run_synchronously(program, graph)
        expected = reference.pagerank_values(graph)
        np.testing.assert_allclose(ranks, expected, rtol=1e-4, atol=1e-6)

    def test_uniform_cycle_has_equal_ranks(self):
        edges = [(i, (i + 1) % 8) for i in range(8)]
        graph = CSRGraph.from_edges(edges, num_vertices=8)
        ranks = run_synchronously(DeltaPageRank(tolerance=1e-10), graph)
        np.testing.assert_allclose(ranks, ranks[0])

    def test_rank_mass_conserved_without_dangling(self):
        # Without dangling vertices total rank equals |V| in the
        # non-normalised formulation.
        edges = [(i, (i + 1) % 10) for i in range(10)] + [(i, (i + 3) % 10) for i in range(10)]
        graph = CSRGraph.from_edges(edges, num_vertices=10)
        ranks = run_synchronously(DeltaPageRank(tolerance=1e-12), graph)
        assert ranks.sum() == pytest.approx(10.0, rel=1e-6)

    def test_hub_gets_higher_rank(self):
        graph = star_graph(20).symmetrize()
        ranks = run_synchronously(DeltaPageRank(tolerance=1e-10), graph)
        assert ranks[0] == ranks.max()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DeltaPageRank(damping=1.5)
        with pytest.raises(ValueError):
            DeltaPageRank(tolerance=0.0)

    def test_partition_delta(self, medium_power_law_graph):
        program = DeltaPageRank()
        state = program.create_state(medium_power_law_graph)
        total = program.partition_delta(medium_power_law_graph, state, 0, medium_power_law_graph.num_vertices)
        assert total == pytest.approx(state["delta"].sum())


class TestPHP:
    def test_matches_fixed_point(self, medium_rmat_graph):
        graph = medium_rmat_graph.without_weights()
        source = int(np.argmax(graph.out_degrees))
        program = PHP(tolerance=1e-10)
        values = run_synchronously(program, graph, source=source)
        expected = reference.php_values(graph, source, penalty=program.penalty)
        np.testing.assert_allclose(values, expected, rtol=1e-4, atol=1e-6)

    def test_source_is_one(self, medium_power_law_graph):
        source = 5
        values = run_synchronously(PHP(), medium_power_law_graph, source=source)
        assert values[source] == 1.0

    def test_values_bounded(self, medium_power_law_graph):
        values = run_synchronously(PHP(tolerance=1e-8), medium_power_law_graph, source=0)
        assert values.min() >= 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PHP(penalty=0.0)
        with pytest.raises(ValueError):
            PHP(tolerance=-1.0)


class TestRegistry:
    def test_all_algorithms_instantiable(self):
        for name in ALGORITHMS:
            assert make_algorithm(name) is not None

    def test_aliases(self):
        assert isinstance(make_algorithm("pr"), DeltaPageRank)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_algorithm("triangle-count")

    def test_program_state_copy_independent(self, paper_graph):
        program = SSSP()
        state = program.create_state(paper_graph, 0)
        duplicate = state.copy()
        duplicate["dist"][0] = 42.0
        assert state["dist"][0] == 0.0
