"""Cross-system tests: every simulated system computes identical answers."""

import numpy as np
import pytest

from repro.algorithms import BFS, ConnectedComponents, DeltaPageRank, SSSP, reference
from repro.sim.config import HardwareConfig
from repro.systems import SYSTEMS, make_system
from repro.systems.cpu_galois import CPUGaloisSystem
from repro.systems.emogi import EmogiSystem
from repro.systems.exptm_filter import ExpTMFilterSystem
from repro.systems.grus import GrusSystem
from repro.systems.hytgraph import HyTGraphSystem
from repro.systems.imptm_um import ImpTMUMSystem
from repro.systems.subway import SubwaySystem
from repro.transfer.base import EngineKind

from tests.conftest import assert_distances_equal

ALL_SYSTEM_NAMES = sorted(SYSTEMS)


class TestRegistry:
    def test_registry_complete(self):
        assert set(SYSTEMS) == {
            "exptm-f",
            "subway",
            "emogi",
            "imptm-um",
            "grus",
            "galois",
            "hytgraph",
        }

    def test_make_system_unknown(self, small_random_graph):
        with pytest.raises(KeyError):
            make_system("gunrock", small_random_graph)

    def test_make_system_passes_config(self, small_random_graph):
        config = HardwareConfig(gpu_memory_bytes=12345)
        system = make_system("emogi", small_random_graph, config=config)
        assert system.config.gpu_memory_bytes == 12345


class TestCrossSystemCorrectness:
    @pytest.mark.parametrize("system_name", ALL_SYSTEM_NAMES)
    def test_sssp(self, system_name, medium_rmat_graph):
        source = int(np.argmax(medium_rmat_graph.out_degrees))
        expected = reference.sssp_distances(medium_rmat_graph, source)
        result = make_system(system_name, medium_rmat_graph).run(SSSP(), source=source)
        assert result.converged
        assert_distances_equal(result.values, expected)

    @pytest.mark.parametrize("system_name", ALL_SYSTEM_NAMES)
    def test_bfs(self, system_name, medium_power_law_graph):
        graph = medium_power_law_graph.without_weights()
        source = int(np.argmax(graph.out_degrees))
        expected = reference.bfs_levels(graph, source)
        result = make_system(system_name, graph).run(BFS(), source=source)
        assert_distances_equal(result.values, expected)

    @pytest.mark.parametrize("system_name", ALL_SYSTEM_NAMES)
    def test_pagerank(self, system_name, medium_rmat_graph):
        graph = medium_rmat_graph.without_weights()
        expected = reference.pagerank_values(graph)
        result = make_system(system_name, graph).run(DeltaPageRank(tolerance=1e-9))
        np.testing.assert_allclose(result.values, expected, rtol=1e-4, atol=1e-6)

    @pytest.mark.parametrize("system_name", ["subway", "emogi", "hytgraph"])
    def test_cc(self, system_name, medium_power_law_graph):
        graph = medium_power_law_graph.without_weights().symmetrize()
        expected = reference.connected_component_labels(graph)
        result = make_system(system_name, graph).run(ConnectedComponents())
        np.testing.assert_allclose(result.values, expected)


class TestRunResultInvariants:
    @pytest.mark.parametrize("system_name", ALL_SYSTEM_NAMES)
    def test_result_metadata(self, system_name, medium_rmat_graph):
        source = int(np.argmax(medium_rmat_graph.out_degrees))
        result = make_system(system_name, medium_rmat_graph).run(SSSP(), source=source)
        assert result.algorithm == "SSSP"
        assert result.graph_name == medium_rmat_graph.name
        assert result.num_iterations == len(result.iterations)
        assert result.total_time == pytest.approx(sum(s.time for s in result.iterations))
        assert result.total_transfer_bytes == sum(s.transfer_bytes for s in result.iterations)

    def test_galois_moves_no_data(self, medium_rmat_graph):
        source = int(np.argmax(medium_rmat_graph.out_degrees))
        result = CPUGaloisSystem(medium_rmat_graph).run(SSSP(), source=source)
        assert result.total_transfer_bytes == 0
        assert result.total_compaction_time == 0.0

    def test_subway_has_compaction_time(self, medium_rmat_graph):
        source = int(np.argmax(medium_rmat_graph.out_degrees))
        result = SubwaySystem(medium_rmat_graph).run(SSSP(), source=source)
        assert result.total_compaction_time > 0

    def test_emogi_has_no_compaction(self, medium_rmat_graph):
        source = int(np.argmax(medium_rmat_graph.out_degrees))
        result = EmogiSystem(medium_rmat_graph).run(SSSP(), source=source)
        assert result.total_compaction_time == 0.0
        for stats in result.iterations:
            assert list(stats.engine_partitions) == [EngineKind.IMP_ZERO_COPY.value]

    def test_um_caching_reduces_transfers_when_graph_fits(self, medium_rmat_graph):
        graph = medium_rmat_graph.without_weights()
        system = ImpTMUMSystem(graph, config=HardwareConfig())  # 11 GB: everything fits
        result = system.run(DeltaPageRank())
        # After the first iteration the pages are resident: later
        # iterations move (almost) nothing.
        later_bytes = sum(stats.transfer_bytes for stats in result.iterations[1:])
        assert later_bytes < result.iterations[0].transfer_bytes
        assert result.extra["page_cache_stats"]["hit_rate"] > 0.5

    def test_um_small_memory_keeps_retransferring(self, medium_rmat_graph):
        graph = medium_rmat_graph.without_weights()
        tiny = HardwareConfig(gpu_memory_bytes=4 * 4096)
        result = ImpTMUMSystem(graph, config=tiny).run(DeltaPageRank())
        later_bytes = sum(stats.transfer_bytes for stats in result.iterations[1:])
        assert later_bytes > 0

    def test_grus_reports_cache_plan(self, medium_rmat_graph):
        result = GrusSystem(medium_rmat_graph).run(SSSP(), source=int(np.argmax(medium_rmat_graph.out_degrees)))
        assert "cached_vertices" in result.extra
        assert "prefetched_bytes" in result.extra

    def test_grus_small_memory_falls_back_to_zero_copy(self, medium_rmat_graph):
        tiny = HardwareConfig(gpu_memory_bytes=1024)
        result = GrusSystem(medium_rmat_graph, config=tiny).run(
            SSSP(), source=int(np.argmax(medium_rmat_graph.out_degrees))
        )
        assert result.extra["cached_vertices"] < medium_rmat_graph.num_vertices
        assert result.total_transfer_bytes > 0

    def test_exptm_filter_transfers_most(self, medium_rmat_graph):
        source = int(np.argmax(medium_rmat_graph.out_degrees))
        filter_result = ExpTMFilterSystem(medium_rmat_graph, num_partitions=16).run(SSSP(), source=source)
        subway_result = SubwaySystem(medium_rmat_graph, num_partitions=16).run(SSSP(), source=source)
        hytgraph_result = HyTGraphSystem(medium_rmat_graph, num_partitions=16).run(SSSP(), source=source)
        assert filter_result.total_transfer_bytes > subway_result.total_transfer_bytes
        assert filter_result.total_transfer_bytes > hytgraph_result.total_transfer_bytes

    def test_subway_multiround_fewer_iterations_than_emogi_for_pagerank(self, medium_power_law_graph):
        graph = medium_power_law_graph.without_weights()
        subway = SubwaySystem(graph).run(DeltaPageRank())
        emogi = EmogiSystem(graph).run(DeltaPageRank())
        assert subway.num_iterations < emogi.num_iterations

    def test_systems_accept_max_iterations(self, medium_rmat_graph):
        source = int(np.argmax(medium_rmat_graph.out_degrees))
        result = EmogiSystem(medium_rmat_graph, max_iterations=2).run(SSSP(), source=source)
        assert result.num_iterations == 2
        assert not result.converged
