"""The pluggable kernel-backend layer: protocol, selection and exactness.

Three concerns, in order:

* **Selection** — registry contents, ``auto`` resolution, the
  ``REPRO_BACKEND`` environment override, and the error contract: an
  unknown or uninstalled backend must fail up front with a message that
  names the installed backends, wherever the name enters the stack
  (registry, ``ExecutionContext``, ``ServiceConfig``, CLI).
* **Exactness** — every installed backend's raw kernels must be bitwise
  equal to the ``ufunc.at`` references on the randomized batch grid
  (the runtime-level equivalence lives in ``test_runtime_equivalence``,
  which replays the 60-case fixture grid per backend).
* **Plumbing** — the active backend is scoped (``use_backend`` restores),
  results record which backend produced them, and a context-pinned
  backend overrides the ambient one for that session only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import backends
from repro.core.backends import (
    BackendUnavailableError,
    KernelBackend,
    UnknownBackendError,
    active_backend,
    available_backends,
    get_backend,
    known_backends,
    resolve_backend,
    resolve_backend_name,
    use_backend,
)
from repro.core.backends.array_api import ArrayApiBackend
from repro.graph.generators import rmat_graph
from repro.service.config import ServiceConfig
from repro.systems import make_system
from tests.test_kernels import bits, random_batches

NUMBA_INSTALLED = "numba" in available_backends()


def installed_backends():
    return [get_backend(name) for name in available_backends()]


class TestRegistryAndSelection:
    def test_builtin_backends_are_registered(self):
        assert set(known_backends()) == {"numpy", "numba", "array-api"}

    def test_numpy_and_array_api_are_always_available(self):
        names = available_backends()
        assert "numpy" in names and "array-api" in names

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_names_are_normalised(self):
        assert get_backend("NumPy") is get_backend("numpy")
        assert get_backend("ARRAY_API") is get_backend("array-api")

    def test_every_installed_backend_satisfies_the_protocol(self):
        for backend in installed_backends():
            assert isinstance(backend, KernelBackend)
            assert backend.name in available_backends()

    def test_unknown_backend_error_names_installed_backends(self):
        with pytest.raises(UnknownBackendError, match="numpy"):
            get_backend("cuda-graphs")
        with pytest.raises(UnknownBackendError, match="installed backends"):
            get_backend("cuda-graphs")

    @pytest.mark.skipif(NUMBA_INSTALLED, reason="numba is installed here")
    def test_unavailable_backend_error_names_installed_backends(self):
        with pytest.raises(BackendUnavailableError, match="installed backends.*numpy"):
            get_backend("numba")

    def test_auto_resolves_to_fastest_installed(self):
        expected = "numba" if NUMBA_INSTALLED else "numpy"
        assert resolve_backend_name("auto") == expected

    def test_auto_never_picks_the_array_api_shim(self):
        assert resolve_backend_name("auto") != "array-api"

    def test_default_resolution_without_env(self, monkeypatch):
        monkeypatch.delenv(backends.ENV_VAR, raising=False)
        assert resolve_backend(None).name == "numpy"

    def test_env_override_applies_when_no_explicit_backend(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "array-api")
        assert resolve_backend(None).name == "array-api"
        # Explicit names still win over the environment.
        assert resolve_backend("numpy").name == "numpy"

    def test_env_override_with_bad_name_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "no-such-backend")
        with pytest.raises(UnknownBackendError):
            resolve_backend(None)

    def test_instances_pass_through_resolution(self):
        backend = get_backend("numpy")
        assert resolve_backend(backend) is backend

    def test_use_backend_scopes_and_restores(self):
        before = active_backend()
        with use_backend("array-api") as backend:
            assert backend.name == "array-api"
            assert active_backend() is backend
        assert active_backend() is before

    def test_use_backend_restores_on_error(self):
        before = active_backend()
        with pytest.raises(RuntimeError):
            with use_backend("array-api"):
                raise RuntimeError("boom")
        assert active_backend() is before

    def test_warmup_is_idempotent(self):
        for backend in installed_backends():
            backend.warmup()
            backend.warmup()


class TestBackendExactness:
    """Raw kernels of every installed backend vs the ufunc.at references."""

    def test_scatter_kernels_match_ufunc_at_bitwise(self):
        for backend in installed_backends():
            for seed, (op, reference) in enumerate(
                [
                    (backend.scatter_add, np.add.at),
                    (backend.scatter_min, np.minimum.at),
                    (backend.scatter_max, np.maximum.at),
                ]
            ):
                for target, destinations, values in random_batches(seed=40 + seed, trials=60):
                    expected = target.copy()
                    reference(expected, destinations, values)
                    actual = op(target.copy(), destinations, values)
                    np.testing.assert_array_equal(
                        bits(expected), bits(actual), err_msg=backend.name
                    )

    @pytest.mark.parametrize("combine", ["min", "max", "add"])
    def test_push_and_activate_matches_seed_formulation(self, combine):
        threshold = 0.25 if combine == "add" else None
        for backend in installed_backends():
            for target, destinations, values in random_batches(seed=50, trials=60):
                destinations = np.asarray(destinations, dtype=np.int64)
                expected_state = target.copy()
                if combine == "add":
                    np.add.at(expected_state, destinations, values)
                    active = expected_state[destinations] > threshold
                    expected_ids = np.unique(destinations[active])
                else:
                    previous = expected_state[destinations].copy()
                    ufunc = np.minimum if combine == "min" else np.maximum
                    ufunc.at(expected_state, destinations, values)
                    changed = (
                        expected_state[destinations] < previous
                        if combine == "min"
                        else expected_state[destinations] > previous
                    )
                    expected_ids = np.unique(destinations[changed])
                actual_state = target.copy()
                kwargs = {"threshold": threshold} if combine == "add" else {}
                actual_ids = backend.push_and_activate(
                    actual_state, destinations, values, combine=combine, **kwargs
                )
                np.testing.assert_array_equal(
                    bits(expected_state), bits(actual_state), err_msg=backend.name
                )
                np.testing.assert_array_equal(expected_ids, actual_ids, err_msg=backend.name)
                assert actual_ids.dtype == np.int64, backend.name

    def test_push_and_activate_error_contract(self):
        for backend in installed_backends():
            with pytest.raises(ValueError, match="threshold"):
                backend.push_and_activate(
                    np.ones(4), np.array([1]), np.array([1.0]), combine="add"
                )
            with pytest.raises(ValueError, match="combine"):
                backend.push_and_activate(
                    np.ones(4), np.array([1]), np.array([1.0]), combine="sum"
                )

    def test_empty_batches_are_no_ops(self):
        empty_ids = np.zeros(0, dtype=np.int64)
        for backend in installed_backends():
            target = np.array([1.0, 2.0, 3.0])
            for op in (backend.scatter_add, backend.scatter_min, backend.scatter_max):
                np.testing.assert_array_equal(op(target.copy(), empty_ids, np.zeros(0)), target)
            out = backend.push_and_activate(target.copy(), empty_ids, np.zeros(0), combine="min")
            assert out.size == 0 and out.dtype == np.int64


class TestArrayApiShim:
    def test_falls_back_to_numpy_namespace(self):
        backend = ArrayApiBackend()
        assert backend.namespace_name in ("cupy", "torch", "numpy")

    def test_numpy_arrays_mutate_in_place_without_copies(self):
        backend = ArrayApiBackend(preferred="numpy")
        target = np.array([5.0, 5.0, 5.0])
        out = backend.scatter_min(target, np.array([0, 2]), np.array([1.0, 9.0]))
        assert out is target
        np.testing.assert_array_equal(target, [1.0, 5.0, 5.0])

    def test_unknown_namespace_rejected(self):
        with pytest.raises(ValueError, match="not installed"):
            ArrayApiBackend(preferred="no-such-namespace")


class TestRuntimePlumbing:
    def graph(self):
        return rmat_graph(200, 1600, seed=7, weighted=True)

    def test_results_record_their_backend(self):
        from repro.algorithms.pagerank import DeltaPageRank

        system = make_system("hytgraph", self.graph(), backend="numpy")
        result = system.run(DeltaPageRank())
        assert result.extra["backend"] == "numpy"

    def test_context_pinned_backend_overrides_ambient(self):
        from repro.algorithms.sssp import SSSP

        system = make_system("emogi", self.graph(), backend="numpy")
        with use_backend("array-api"):
            result = system.run(SSSP(), source=0)
        assert result.extra["backend"] == "numpy"

    def test_ambient_backend_flows_into_unpinned_sessions(self):
        from repro.algorithms.sssp import SSSP

        system = make_system("emogi", self.graph())
        with use_backend("array-api"):
            result = system.run(SSSP(), source=0)
        assert result.extra["backend"] == "array-api"

    def test_pinned_backend_runs_bitwise_equal_to_reference(self):
        from repro.algorithms.pagerank import DeltaPageRank

        graph = self.graph()
        reference = make_system("hytgraph", graph, backend="numpy").run(DeltaPageRank())
        for name in available_backends():
            result = make_system("hytgraph", graph, backend=name).run(DeltaPageRank())
            np.testing.assert_array_equal(
                bits(reference.values), bits(result.values), err_msg=name
            )
            assert result.extra["backend"] == name

    def test_unknown_backend_fails_system_construction(self):
        with pytest.raises(UnknownBackendError, match="installed backends"):
            make_system("hytgraph", self.graph(), backend="no-such-backend")

    @pytest.mark.skipif(NUMBA_INSTALLED, reason="numba is installed here")
    def test_unavailable_backend_fails_system_construction(self):
        with pytest.raises(BackendUnavailableError, match="numba"):
            make_system("subway", self.graph(), backend="numba")

    def test_batch_results_record_their_backend(self):
        from repro.bench.workloads import build_workload
        from repro.service import GraphService, QueryRequest

        workload = build_workload("SK", "sssp", scale=0.05)
        service = GraphService.for_workload(workload, "hytgraph", backend="numpy")
        service.submit(QueryRequest(algorithm="sssp", source=0))
        service.submit(QueryRequest(algorithm="sssp", source=1))
        (batch,) = service.drain()
        assert batch.extra["backend"] == "numpy"


class TestServiceConfigAndCli:
    def test_config_accepts_known_backends(self):
        for name in ("numpy", "array-api", "auto"):
            config = ServiceConfig(backend=name)
            assert config.system_kwargs()["backend"] == name

    def test_config_without_backend_passes_no_kwarg(self):
        assert "backend" not in ServiceConfig().system_kwargs()

    def test_config_rejects_unknown_backend_naming_installed(self):
        with pytest.raises(ValueError, match="installed backends"):
            ServiceConfig(backend="cuda-graphs")

    @pytest.mark.skipif(NUMBA_INSTALLED, reason="numba is installed here")
    def test_config_rejects_uninstalled_backend(self):
        with pytest.raises(ValueError, match="numba"):
            ServiceConfig(backend="numba")

    def test_cli_unknown_backend_fails_naming_installed(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--dataset", "SK", "--scale", "0.05", "--backend", "bogus"])
        assert "installed backends" in str(excinfo.value)
        assert "numpy" in str(excinfo.value)

    def test_cli_run_verbose_prints_backend(self, capsys):
        from repro.cli import main

        assert main([
            "run", "--dataset", "SK", "--algorithm", "bfs", "--scale", "0.05",
            "--backend", "numpy", "--verbose",
        ]) == 0
        assert "compute backend: numpy" in capsys.readouterr().out

    def test_cli_serve_prints_backend(self, capsys):
        from repro.cli import main

        # serve without --backend reports the ambient backend (which the
        # REPRO_BACKEND environment may set, e.g. in the numba CI leg).
        expected = active_backend().name
        assert main([
            "serve", "--dataset", "SK", "--scale", "0.05",
            "--point-lookups", "2", "--analytical", "1",
        ]) == 0
        assert "compute backend: %s" % expected in capsys.readouterr().out
