"""Unit tests for the PCIe transfer-time model (Formulas 1-3 plumbing)."""

import numpy as np
import pytest

from repro.sim.pcie import PCIeModel


@pytest.fixture
def pcie(config):
    return PCIeModel(config)


class TestExplicitCopy:
    def test_zero_bytes(self, pcie):
        assert pcie.explicit_copy_tlps(0) == 0
        assert pcie.explicit_copy_time(0) == 0.0

    def test_single_tlp(self, pcie, config):
        assert pcie.explicit_copy_tlps(1) == 1
        assert pcie.explicit_copy_time(1) == pytest.approx(config.tlp_round_trip_time)

    def test_exact_multiple(self, pcie, config):
        payload = config.tlp_payload_bytes
        assert pcie.explicit_copy_tlps(3 * payload) == 3

    def test_rounds_up(self, pcie, config):
        payload = config.tlp_payload_bytes
        assert pcie.explicit_copy_tlps(payload + 1) == 2

    def test_large_transfer_matches_bandwidth(self, pcie, config):
        num_bytes = 1 << 30
        time = pcie.explicit_copy_time(num_bytes)
        assert time == pytest.approx(num_bytes / config.pcie_bandwidth, rel=0.01)


class TestZeroCopyRequests:
    def test_aligned_requests(self, pcie, config):
        degrees = np.array([1, 32, 33, 64])
        requests = pcie.requests_for_vertices(degrees)
        # 4 bytes per entry, 128-byte requests -> 32 entries per request.
        np.testing.assert_array_equal(requests, [1, 1, 2, 2])

    def test_zero_degree_needs_no_request(self, pcie):
        np.testing.assert_array_equal(pcie.requests_for_vertices(np.array([0, 0])), [0, 0])

    def test_misalignment_adds_request(self, pcie, config):
        degrees = np.array([32, 32])
        start_bytes = np.array([0, 64])  # second vertex starts mid-line
        requests = pcie.requests_for_vertices(degrees, start_bytes)
        np.testing.assert_array_equal(requests, [1, 2])

    def test_custom_value_bytes(self, pcie):
        degrees = np.array([16])
        assert pcie.requests_for_vertices(degrees, value_bytes=8)[0] == 1
        assert pcie.requests_for_vertices(np.array([17]), value_bytes=8)[0] == 2


class TestZeroCopyTiming:
    def test_rtt_saturated_equals_full_rtt(self, pcie, config):
        assert pcie.zero_copy_rtt(1.0) == pytest.approx(config.tlp_round_trip_time)

    def test_rtt_empty_pays_gamma(self, pcie, config):
        assert pcie.zero_copy_rtt(0.0) == pytest.approx(config.zero_copy_gamma * config.tlp_round_trip_time)

    def test_rtt_clamps_fraction(self, pcie, config):
        assert pcie.zero_copy_rtt(2.0) == pytest.approx(config.tlp_round_trip_time)

    def test_access_counts(self, pcie, config):
        degrees = np.full(512, 32)  # each vertex exactly one saturated request
        access = pcie.zero_copy_access(degrees)
        assert access.num_requests == 512
        assert access.num_tlps == 2
        assert access.payload_bytes == 512 * 32 * config.vertex_value_bytes
        assert access.time == pytest.approx(2 * config.tlp_round_trip_time)

    def test_access_empty(self, pcie):
        access = pcie.zero_copy_access(np.array([], dtype=np.int64))
        assert access.num_requests == 0
        assert access.time == 0.0

    def test_low_degree_vertices_cost_more_per_byte(self, pcie):
        # Same number of edges, spread over many low-degree vertices vs few
        # high-degree ones: the low-degree version needs more requests and
        # more time (the Figure 4 toy-example effect).
        low = pcie.zero_copy_access(np.full(256, 4))
        high = pcie.zero_copy_access(np.full(32, 32))
        assert low.payload_bytes == high.payload_bytes
        assert low.num_requests > high.num_requests
        assert low.time > high.time

    def test_throughput_figure_3e_shape(self, pcie, config):
        # Figure 3(e): 128-byte requests match cudaMemcpy; smaller requests
        # lose throughput monotonically, 32-byte roughly a third.
        throughput = {size: pcie.zero_copy_throughput(size) for size in (32, 64, 96, 128)}
        assert throughput[128] == pytest.approx(pcie.explicit_copy_throughput(), rel=0.01)
        assert throughput[32] < throughput[64] < throughput[96] < throughput[128]
        assert throughput[32] < 0.5 * throughput[128]

    def test_throughput_invalid_request(self, pcie):
        with pytest.raises(ValueError):
            pcie.zero_copy_throughput(0)


class TestUnifiedMemory:
    def test_migration_time_zero_pages(self, pcie):
        assert pcie.page_migration_time(0) == 0.0

    def test_migration_slower_than_explicit_copy(self, pcie, config):
        pages = 1024
        um_time = pcie.page_migration_time(pages)
        explicit = pcie.explicit_copy_time(pages * config.um_page_bytes)
        assert um_time > explicit

    def test_pages_for_ranges(self, pcie, config):
        page = config.um_page_bytes
        starts = np.array([0, page - 4, 3 * page])
        lengths = np.array([8, 8, 8])
        pages = pcie.pages_for_byte_ranges(starts, lengths)
        # Second range straddles pages 0 and 1.
        np.testing.assert_array_equal(pages, [0, 1, 3])

    def test_pages_for_empty_ranges(self, pcie):
        pages = pcie.pages_for_byte_ranges(np.array([10]), np.array([0]))
        assert pages.size == 0

    def test_pages_unique_across_overlapping_ranges(self, pcie, config):
        page = config.um_page_bytes
        starts = np.array([0, 16])
        lengths = np.array([32, 32])
        pages = pcie.pages_for_byte_ranges(starts, lengths)
        np.testing.assert_array_equal(pages, [0])
