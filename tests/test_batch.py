"""Tests of the concurrent multi-query serving layer.

Two guarantees anchor the batch runner:

1. **Determinism** — a batch of K queries produces, per query, bitwise
   identical values to K standalone runs: sharing warm transfer state
   affects simulated time and bytes, never semantics.
2. **Amortization** — on a transfer-bound workload the batch makespan is
   strictly below the sequential serving time, because shard residency
   is warmed once per batch, whole-partition transfers are deduplicated
   across queries and the queries' stream tasks co-schedule over the
   shared PCIe/streams.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bfs import BFS
from repro.algorithms.pagerank import DeltaPageRank
from repro.algorithms.sssp import SSSP
from repro.bench.workloads import batch_sources
from repro.graph.generators import rmat_graph
from repro.metrics.results import BatchResult
from repro.runtime.batch import QueryBatchRunner, SharedTransferState
from repro.sim.config import HardwareConfig
from repro.systems.emogi import EmogiSystem
from repro.systems.exptm_filter import ExpTMFilterSystem
from repro.systems.hytgraph import HyTGraphSystem
from repro.systems.subway import SubwaySystem

MULTI_SYSTEMS = [HyTGraphSystem, EmogiSystem, SubwaySystem, ExpTMFilterSystem]


@pytest.fixture(scope="module")
def transfer_bound_graph():
    return rmat_graph(2000, 20000, seed=5, weighted=True, name="rmat")


@pytest.fixture(scope="module")
def transfer_bound_config(transfer_bound_graph):
    # PCIe throttled far below kernel throughput; one device holds half
    # the edge data, two devices make the whole graph shard-resident.
    return HardwareConfig(
        gpu_memory_bytes=transfer_bound_graph.edge_data_bytes // 2, pcie_bandwidth=1e9
    )


# ----------------------------------------------------------------------
# (a) batch of K == K sequential runs, value-exact per query
# ----------------------------------------------------------------------


@pytest.mark.parametrize("system_cls", MULTI_SYSTEMS)
@pytest.mark.parametrize("devices", [1, 2])
def test_batch_values_exactly_match_sequential_runs(
    system_cls, devices, transfer_bound_graph, transfer_bound_config
):
    graph = transfer_bound_graph
    config = transfer_bound_config.with_devices(devices)
    sources = batch_sources(graph, 4)
    program = SSSP()

    system = system_cls(graph, config=config)
    sequential = [system.run(program, source=source) for source in sources]
    batch = QueryBatchRunner(system).run([(program, source) for source in sources])

    assert batch.num_queries == len(sources)
    for standalone, batched in zip(sequential, batch.results):
        assert batched.converged
        assert np.array_equal(np.asarray(standalone.values), np.asarray(batched.values))
        assert batched.num_iterations == standalone.num_iterations


def test_batch_mixed_algorithms_value_exact(transfer_bound_graph):
    graph = transfer_bound_graph
    system = HyTGraphSystem(graph, config=HardwareConfig())
    queries = [(SSSP(), 0), (BFS(), 1), (DeltaPageRank(), None)]
    standalone = [system.run(program, source=source) for program, source in queries]
    batch = QueryBatchRunner(system).run(queries)
    for alone, batched in zip(standalone, batch.results):
        assert np.array_equal(np.asarray(alone.values), np.asarray(batched.values))
        assert batched.algorithm == alone.algorithm
    assert len({result.algorithm for result in batch.results}) == 3


# ----------------------------------------------------------------------
# (b) amortization: batched beats sequential on transfer-bound workloads
# ----------------------------------------------------------------------


def test_batched_hytgraph_at_least_2x_on_transfer_bound_multi_gpu(
    transfer_bound_graph, transfer_bound_config
):
    """The acceptance bar: 16 batched SSSP sources >= 2x vs sequential."""
    graph = transfer_bound_graph
    config = transfer_bound_config.with_devices(2)
    sources = batch_sources(graph, 16)
    program = SSSP()

    system = HyTGraphSystem(graph, config=config)
    sequential_time = sum(system.run(program, source=source).total_time for source in sources)
    batch = QueryBatchRunner(system).run([(program, source) for source in sources])

    assert batch.makespan > 0
    speedup = sequential_time / batch.makespan
    assert speedup >= 2.0, "batched speedup %.2fx below the 2x bar" % speedup
    assert batch.queries_per_second == pytest.approx(16 / batch.makespan)


def test_batch_never_slower_than_sequential_per_system(
    transfer_bound_graph, transfer_bound_config
):
    graph = transfer_bound_graph
    program = SSSP()
    sources = batch_sources(graph, 4)
    for system_cls in MULTI_SYSTEMS:
        system = system_cls(graph, config=transfer_bound_config.with_devices(2))
        sequential_time = sum(system.run(program, source=source).total_time for source in sources)
        batch = QueryBatchRunner(system).run([(program, source) for source in sources])
        assert batch.makespan <= sequential_time, system_cls.name


def test_exptm_filter_batch_dedupes_partition_transfers(transfer_bound_graph):
    # Single device, no residency: the only sharing is the per-super-
    # iteration whole-partition dedup, which must show up as amortized
    # bytes and shrink the batch's transfer volume.
    graph = transfer_bound_graph
    system = ExpTMFilterSystem(graph, config=HardwareConfig())
    program = SSSP()
    sources = batch_sources(graph, 4)
    sequential_bytes = sum(
        system.run(program, source=source).total_transfer_bytes for source in sources
    )
    batch = QueryBatchRunner(system).run([(program, source) for source in sources])
    assert batch.amortized_bytes > 0
    assert batch.total_transfer_bytes < sequential_bytes
    assert batch.total_transfer_bytes + batch.amortized_bytes == sequential_bytes


def test_hytgraph_batch_warms_residency_once(transfer_bound_graph, transfer_bound_config):
    graph = transfer_bound_graph
    config = transfer_bound_config.with_devices(2)
    program = SSSP()
    sources = batch_sources(graph, 4)
    system = HyTGraphSystem(graph, config=config)
    sequential = [system.run(program, source=source) for source in sources]
    batch = QueryBatchRunner(system).run([(program, source) for source in sources])
    # Sequentially every query pays the residency first-touch copies; in
    # the batch only the first one does.
    assert batch.total_transfer_bytes < sum(r.total_transfer_bytes for r in sequential)
    assert batch.extra["resident_partitions"] > 0


# ----------------------------------------------------------------------
# BatchResult bookkeeping and edge cases
# ----------------------------------------------------------------------


def test_batch_result_aggregates(transfer_bound_graph):
    graph = transfer_bound_graph
    system = EmogiSystem(graph, config=HardwareConfig())
    program = SSSP()
    sources = batch_sources(graph, 3)
    batch = QueryBatchRunner(system).run([(program, source) for source in sources])
    assert isinstance(batch, BatchResult)
    assert batch.system == "EMOGI"
    assert batch.num_queries == 3
    assert batch.super_iterations == max(r.num_iterations for r in batch.results)
    assert batch.total_transfer_bytes == sum(r.total_transfer_bytes for r in batch.results)
    assert batch.sequential_time_estimate == pytest.approx(
        sum(r.total_time for r in batch.results)
    )
    row = batch.summary_row()
    assert row["queries"] == 3 and row["system"] == "EMOGI"
    stats = batch.amortization_vs(batch.results)
    assert stats["speedup"] >= 1.0  # co-scheduling can only help
    assert stats["transfer_bytes_saved"] == 0.0  # same results on both sides


def test_empty_batch_refused(transfer_bound_graph):
    system = EmogiSystem(transfer_bound_graph, config=HardwareConfig())
    with pytest.raises(ValueError, match="at least one query"):
        QueryBatchRunner(system).run([])


def test_single_query_batch_matches_plain_run(transfer_bound_graph):
    graph = transfer_bound_graph
    program = SSSP()
    system = HyTGraphSystem(graph, config=HardwareConfig())
    alone = system.run(program, source=0)
    batch = QueryBatchRunner(system).run([(program, 0)])
    assert np.array_equal(np.asarray(alone.values), np.asarray(batch.results[0].values))
    assert batch.results[0].per_iteration_times() == alone.per_iteration_times()
    assert batch.results[0].total_transfer_bytes == alone.total_transfer_bytes


def test_shared_transfer_state_claims_once_per_super_iteration():
    shared = SharedTransferState()
    sizes = {1: 100, 2: 200, 3: 300}
    assert shared.claim_partitions([1, 2], sizes.get) == [1, 2]
    assert shared.claim_partitions([2, 3], sizes.get) == [3]
    assert shared.amortized_bytes == 200
    shared.begin_super_iteration()
    assert shared.claim_partitions([2], sizes.get) == [2]


def test_grus_batch_pays_prefetch_once(transfer_bound_graph):
    from repro.systems.grus import GrusSystem

    graph = transfer_bound_graph
    system = GrusSystem(
        graph, config=HardwareConfig(gpu_memory_bytes=graph.edge_data_bytes // 4)
    )
    program = SSSP()
    solo = [system.run(program, source=source) for source in (0, 1)]
    prefetched = solo[0].extra["prefetched_bytes"]
    assert prefetched > 0
    batch = QueryBatchRunner(system).run([(program, 0), (program, 1)])
    # The prefetched data is query-independent: sequential serving pays
    # it per query, the batch exactly once.
    solo_bytes = sum(result.total_transfer_bytes for result in solo)
    assert solo_bytes - batch.total_transfer_bytes == prefetched
    for alone, batched in zip(solo, batch.results):
        assert np.array_equal(np.asarray(alone.values), np.asarray(batched.values))


def test_imptm_um_batch_reports_per_query_cache_stats(transfer_bound_graph):
    from repro.systems.imptm_um import ImpTMUMSystem

    graph = transfer_bound_graph
    system = ImpTMUMSystem(graph, config=HardwareConfig())
    program = SSSP()
    solo = system.run(program, source=0)
    batch = QueryBatchRunner(system).run([(program, source) for source in (0, 1, 2)])
    stats = [result.extra["page_cache_stats"] for result in batch.results]
    # Counters are attributed per query, not batch-cumulative...
    assert len({(entry["hits"], entry["faults"]) for entry in stats}) > 1
    # ...and with a cache big enough to avoid evictions, sharing it can
    # only reduce faults: each query faults at most its standalone count
    # (interleaved queries warm pages for each other).
    solo_faults = solo.extra["page_cache_stats"]["faults"]
    for entry in stats:
        assert entry["faults"] <= solo_faults
    assert sum(entry["faults"] for entry in stats) < 3 * solo_faults
