"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import make_algorithm, reference
from repro.algorithms.sssp import SSSP
from repro.faults import QueryCheckpoint
from repro.core.cost_model import CostModel
from repro.core.selection import EngineSelector
from repro.graph.csr import CSRGraph
from repro.graph.frontier import Frontier
from repro.graph.partition import partition_by_bytes, partition_by_count
from repro.graph.reorder import hub_sort, hub_sort_order
from repro.sim.config import HardwareConfig
from repro.sim.pcie import PCIeModel
from repro.sim.streams import StreamScheduler, StreamTask

from tests.conftest import assert_distances_equal

COMMON_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def edge_lists(draw, max_vertices=40, max_edges=200):
    """Random (num_vertices, edges, weights) triples."""
    num_vertices = draw(st.integers(min_value=1, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_vertices - 1),
                st.integers(min_value=0, max_value=num_vertices - 1),
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=16),
            min_size=len(edges),
            max_size=len(edges),
        )
    )
    return num_vertices, edges, [float(w) for w in weights]


@COMMON_SETTINGS
@given(edge_lists())
def test_csr_from_edges_invariants(data):
    num_vertices, edges, weights = data
    graph = CSRGraph.from_edges(edges, num_vertices=num_vertices, weights=weights)
    # Row offsets are monotone, cover all edges, and degrees sum to |E|.
    assert graph.row_offset[0] == 0
    assert graph.row_offset[-1] == graph.num_edges == len(edges)
    assert np.all(np.diff(graph.row_offset) >= 0)
    assert graph.out_degrees.sum() == graph.num_edges
    assert graph.in_degrees.sum() == graph.num_edges
    # Every (src, dst) pair survives with its multiplicity.
    rebuilt = sorted((src, dst) for src, dst, _ in graph.iter_edges())
    assert rebuilt == sorted((int(s), int(d)) for s, d in edges)


@COMMON_SETTINGS
@given(edge_lists())
def test_reverse_is_involution(data):
    num_vertices, edges, _ = data
    graph = CSRGraph.from_edges(edges, num_vertices=num_vertices)
    double_reversed = graph.reverse().reverse()
    np.testing.assert_array_equal(double_reversed.row_offset, graph.row_offset)
    np.testing.assert_array_equal(double_reversed.column_index, graph.column_index)


@COMMON_SETTINGS
@given(edge_lists(), st.integers(min_value=1, max_value=10))
def test_partitioning_tiles_any_graph(data, num_partitions):
    num_vertices, edges, _ = data
    graph = CSRGraph.from_edges(edges, num_vertices=num_vertices)
    partitioning = partition_by_count(graph, num_partitions)
    assert partitioning.edges_per_partition().sum() == graph.num_edges
    covered_vertices = sum(p.num_vertices for p in partitioning)
    assert covered_vertices == graph.num_vertices
    # Every vertex maps to the partition that contains it.
    for vertex in range(graph.num_vertices):
        partition = partitioning[partitioning.partition_of_vertex(vertex)]
        assert partition.vertex_start <= vertex < partition.vertex_end


@COMMON_SETTINGS
@given(edge_lists(), st.integers(min_value=64, max_value=4096))
def test_partition_by_bytes_tiles_any_graph(data, budget):
    num_vertices, edges, weights = data
    graph = CSRGraph.from_edges(edges, num_vertices=num_vertices, weights=weights)
    partitioning = partition_by_bytes(graph, budget)
    assert partitioning.bytes_per_partition().sum() == graph.edge_data_bytes


@COMMON_SETTINGS
@given(
    st.integers(min_value=1, max_value=60),
    st.lists(st.integers(min_value=0, max_value=59), max_size=30),
    st.lists(st.integers(min_value=0, max_value=59), max_size=30),
)
def test_frontier_matches_python_sets(num_vertices, first, second):
    first = [v for v in first if v < num_vertices]
    second = [v for v in second if v < num_vertices]
    left = Frontier(num_vertices, first)
    right = Frontier(num_vertices, second)
    assert set(left.union(right).active_vertices()) == set(first) | set(second)
    assert set(left.intersection(right).active_vertices()) == set(first) & set(second)
    assert set(left.difference(right).active_vertices()) == set(first) - set(second)
    assert left.count == len(set(first))


@COMMON_SETTINGS
@given(edge_lists(), st.floats(min_value=0.0, max_value=1.0))
def test_hub_sort_order_is_permutation(data, fraction):
    num_vertices, edges, _ = data
    graph = CSRGraph.from_edges(edges, num_vertices=num_vertices)
    order = hub_sort_order(graph, fraction)
    assert sorted(order.tolist()) == list(range(num_vertices))


@COMMON_SETTINGS
@given(edge_lists())
def test_hub_sorted_sssp_matches_reference(data):
    num_vertices, edges, weights = data
    graph = CSRGraph.from_edges(edges, num_vertices=num_vertices, weights=weights)
    reordered = hub_sort(graph, 0.1)
    source = 0
    internal = reordered.translate_to_new(source)
    # Run SSSP synchronously on the relabelled graph and map back.
    program = SSSP()
    state = program.create_state(reordered.graph, internal)
    pending = program.initial_frontier(reordered.graph, state, internal).mask.copy()
    for _ in range(10_000):
        active = np.nonzero(pending)[0]
        if active.size == 0:
            break
        pending[active] = False
        newly = program.process(reordered.graph, state, active)
        if newly.size:
            pending[newly] = True
    restored = reordered.values_in_original_order(program.vertex_result(state))
    assert_distances_equal(restored, reference.sssp_distances(graph, source))


@COMMON_SETTINGS
@given(
    st.lists(st.integers(min_value=0, max_value=512), min_size=1, max_size=64),
    st.integers(min_value=0, max_value=4096),
)
def test_zero_copy_requests_lower_bound(degrees, start):
    config = HardwareConfig()
    pcie = PCIeModel(config)
    degrees = np.array(degrees, dtype=np.int64)
    starts = np.full(degrees.size, start, dtype=np.int64)
    requests = pcie.requests_for_vertices(degrees, starts)
    minimum = np.ceil(degrees * config.vertex_value_bytes / config.pcie_request_bytes)
    assert np.all(requests >= minimum)
    # Misalignment adds at most one extra request per vertex.
    assert np.all(requests <= minimum + 1)


@COMMON_SETTINGS
@given(st.integers(min_value=0, max_value=1 << 24))
def test_explicit_copy_time_monotone(num_bytes):
    pcie = PCIeModel(HardwareConfig())
    smaller = pcie.explicit_copy_time(num_bytes)
    larger = pcie.explicit_copy_time(num_bytes + 4096)
    assert larger >= smaller


@COMMON_SETTINGS
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=2.0),
            st.floats(min_value=0.0, max_value=2.0),
            st.floats(min_value=0.0, max_value=2.0),
            st.booleans(),
        ),
        min_size=1,
        max_size=12,
    ),
    st.integers(min_value=1, max_value=6),
)
def test_stream_schedule_bounds(task_specs, num_streams):
    scheduler = StreamScheduler(HardwareConfig())
    tasks = [
        StreamTask("t%d" % index, "ExpTM-F", cpu_time=cpu, transfer_time=transfer, kernel_time=kernel,
                   overlapped_transfer=overlapped)
        for index, (cpu, transfer, kernel, overlapped) in enumerate(task_specs)
    ]
    timeline = scheduler.schedule(tasks, num_streams=num_streams)
    serial = scheduler.serial_time(tasks)
    longest_task = max(task.serial_time for task in tasks)
    assert timeline.makespan <= serial + 1e-9
    assert timeline.makespan >= longest_task - 1e-9
    # Resource busy time is conserved regardless of the schedule.
    assert timeline.busy_time("cpu") == pytest.approx(sum(t.cpu_time for t in tasks))


@COMMON_SETTINGS
@given(edge_lists())
def test_cost_model_non_negative_and_selection_total(data):
    num_vertices, edges, weights = data
    graph = CSRGraph.from_edges(edges, num_vertices=num_vertices, weights=weights)
    partitioning = partition_by_count(graph, 4)
    if partitioning.num_partitions == 0:
        return
    model = CostModel(graph, partitioning, HardwareConfig())
    mask = np.zeros(num_vertices, dtype=bool)
    mask[::2] = True
    costs = model.estimate(mask)
    assert np.all(costs.filter_cost >= 0)
    assert np.all(costs.compaction_cost >= 0)
    assert np.all(costs.zero_copy_cost >= 0)
    selection = EngineSelector().select(costs)
    # Every partition with active edges gets exactly one engine.
    active = costs.active_partitions()
    assert all(selection.choices[index] is not None for index in active)
    assert sum(selection.counts().values()) == active.size


ALGORITHM_NAMES = ["bfs", "sssp", "cc", "pagerank", "php"]


@COMMON_SETTINGS
@given(edge_lists(), st.sampled_from(ALGORITHM_NAMES), st.integers(min_value=0, max_value=3))
def test_checkpoint_restore_roundtrip_bitwise(data, algorithm, steps):
    """capture → diverge/corrupt → restore is a bitwise roundtrip.

    Holds for every algorithm's state layout on arbitrary graphs: the
    checkpoint owns copies of the session arrays, so nothing the session
    does afterwards — more iterations, outright corruption — leaks into
    what restore brings back.
    """
    from repro.systems.hytgraph import HyTGraphSystem

    num_vertices, edges, weights = data
    graph = CSRGraph.from_edges(edges, num_vertices=num_vertices, weights=weights)
    system = HyTGraphSystem(graph, HardwareConfig())
    program = make_algorithm(algorithm)
    source = 0 if program.needs_source else None
    session = system.start_session(program, source)
    driver = system.driver
    for _ in range(steps):
        if not session.pending.any():
            break
        plan = driver.plan(system, session)
        session.result.iterations.append(driver.finish(plan))
        session.iteration += 1

    checkpoint = driver.capture_checkpoint(session)
    assert isinstance(checkpoint, QueryCheckpoint)
    assert checkpoint.checkpoint_bytes > 0
    arrays = {key: value.copy() for key, value in session.state.arrays.items()}
    pending = session.pending.copy()
    iteration = session.iteration
    records = len(session.result.iterations)

    # Diverge: run further, then corrupt every array outright.
    for _ in range(2):
        if not session.pending.any():
            break
        plan = driver.plan(system, session)
        session.result.iterations.append(driver.finish(plan))
        session.iteration += 1
    for value in session.state.arrays.values():
        if value.dtype == bool:
            value[:] = ~value
        elif value.size:
            value[:] = value[::-1].copy()
    session.pending[:] = ~session.pending

    cost = driver.restore_checkpoint(session, checkpoint)
    assert cost >= 0.0
    assert session.iteration == iteration
    assert len(session.result.iterations) == records
    np.testing.assert_array_equal(session.pending, pending)
    assert session.state.arrays.keys() == arrays.keys()
    for key, value in arrays.items():
        restored = session.state.arrays[key]
        assert restored.dtype == value.dtype
        np.testing.assert_array_equal(restored, value)

    # The checkpoint survives its own restore: a second rollback after
    # further divergence lands on the same bits.
    session.pending[:] = ~session.pending
    driver.restore_checkpoint(session, checkpoint)
    np.testing.assert_array_equal(session.pending, pending)
