"""Unit tests for graph statistics (Figure 3f) and graph persistence."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.io import load_csr, load_edge_list, save_csr, save_edge_list
from repro.graph.properties import degree_bucket_fractions, degree_histogram, summarize


class TestDegreeStatistics:
    def test_bucket_fractions_sum_to_one(self, medium_power_law_graph):
        fractions = degree_bucket_fractions(medium_power_law_graph)
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert set(fractions) == {"[0,8)", "[8,16)", "[16,24)", "[24,32)", "[32,inf)"}

    def test_bucket_fractions_known_graph(self):
        graph = CSRGraph.from_edges([(0, 1)] * 0 + [(1, i) for i in range(2, 12)], num_vertices=12)
        fractions = degree_bucket_fractions(graph)
        # Vertex 1 has degree 10 -> bucket [8,16); all others degree 0.
        assert fractions["[8,16)"] == pytest.approx(1 / 12)
        assert fractions["[0,8)"] == pytest.approx(11 / 12)

    def test_empty_graph(self):
        assert degree_bucket_fractions(CSRGraph.empty(0)) == {}

    def test_degree_histogram(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 2), (1, 2)], num_vertices=3)
        histogram = degree_histogram(graph)
        assert histogram == {2: 1, 1: 1, 0: 1}

    def test_summarize(self, paper_graph):
        summary = summarize(paper_graph)
        assert summary.num_vertices == 6
        assert summary.num_edges == 10
        assert summary.max_out_degree == 2
        assert summary.fraction_below_32 == 1.0
        row = summary.as_row()
        assert row["dataset"] == "figure1"
        assert row["|E|"] == 10


class TestEdgeListIO:
    def test_roundtrip_weighted(self, paper_graph, tmp_path):
        path = tmp_path / "graph.txt"
        save_edge_list(paper_graph, path)
        loaded = load_edge_list(path, num_vertices=6)
        assert loaded.num_edges == paper_graph.num_edges
        np.testing.assert_array_equal(loaded.row_offset, paper_graph.row_offset)
        np.testing.assert_array_equal(loaded.column_index, paper_graph.column_index)
        np.testing.assert_allclose(loaded.edge_value, paper_graph.edge_value)

    def test_roundtrip_unweighted(self, small_random_graph, tmp_path):
        graph = small_random_graph.without_weights()
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        loaded = load_edge_list(path, num_vertices=graph.num_vertices)
        assert not loaded.is_weighted
        np.testing.assert_array_equal(loaded.column_index, graph.column_index)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# comment\n\n% another\n0 1\n1 2\n")
        loaded = load_edge_list(path)
        assert loaded.num_edges == 2

    def test_forced_unweighted_parse(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1 9\n1 0 7\n")
        loaded = load_edge_list(path, weighted=False)
        assert not loaded.is_weighted


class TestCSRBundleIO:
    def test_roundtrip(self, paper_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_csr(paper_graph, path)
        loaded = load_csr(path)
        np.testing.assert_array_equal(loaded.row_offset, paper_graph.row_offset)
        np.testing.assert_array_equal(loaded.column_index, paper_graph.column_index)
        np.testing.assert_allclose(loaded.edge_value, paper_graph.edge_value)
        assert loaded.name == paper_graph.name

    def test_roundtrip_unweighted(self, tmp_path):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)], num_vertices=3, name="tiny")
        path = tmp_path / "tiny.npz"
        save_csr(graph, path)
        loaded = load_csr(path)
        assert not loaded.is_weighted
        assert loaded.num_edges == 2
