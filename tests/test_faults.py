"""Fault injection and checkpoint/recovery tests.

The anchor is the chaos grid: fault kinds x algorithms x systems x
device counts, asserting that every query that survives a fault returns
values **bitwise identical** to a fault-free run — faults perturb time,
placement and residency, never vertex-program semantics.  CI sweeps the
grid under several fixed seeds via the ``REPRO_CHAOS_SEED`` environment
variable; with a fixed seed the injected fault sequence is fully
deterministic.

The bitwise cells use the exact fixed-point algorithms (bfs/sssp/cc):
their unique fixed point is reached bitwise no matter how a fault
reorders the asynchronous task schedule.  The rank-style programs
(pagerank/php) are *trajectory-dependent* under the asynchronous
runtime — a task processes activations produced by tasks scheduled
earlier in the same iteration, so re-sharding after a device loss
legitimately changes the accumulation order.  Those recover to the same
fixed point within convergence tolerance and get their own test.

Around the grid: unit tests of the spec grammar, the retry policy, the
injector's determinism, the cache's fault-recovery surface, host
fallback, permanent failures, deadline cancellation and the service's
circuit breaker.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.faults import (
    CircuitBreaker,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    FaultSpec,
    QueryCheckpoint,
    RetryPolicy,
)
from repro.graph.generators import rmat_graph
from repro.runtime.batch import QueryBatchRunner
from repro.service import (
    GraphService,
    Priority,
    QueryFailed,
    QueryRequest,
    RequestStatus,
    ServiceConfig,
)
from repro.sim.config import HardwareConfig
from repro.systems.exptm_filter import ExpTMFilterSystem
from repro.systems.hytgraph import HyTGraphSystem
from repro.systems.subway import SubwaySystem

#: CI sweeps the chaos grid under several seeds; local runs use 0.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

GRID_SYSTEMS = [HyTGraphSystem, ExpTMFilterSystem, SubwaySystem]
GRID_ALGORITHMS = ["bfs", "sssp", "cc"]
GRID_DEVICES = [1, 2, 4]
GRID_FAULTS = [
    "device-loss@2:device=0",
    "transfer-flaky:p=0.1",
    "memory-pressure@1:factor=0.5",
]


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(1200, 9000, seed=5, weighted=True, name="rmat")


@pytest.fixture(scope="module")
def config(graph):
    # Transfer-bound: PCIe throttled far below kernel throughput, one
    # device holds half the edge data.
    return HardwareConfig(gpu_memory_bytes=graph.edge_data_bytes // 2, pcie_bandwidth=1e9)


def run_batch(system_cls, graph, config, algorithm, devices, faults=None, **run_kwargs):
    """One fresh-session batch, optionally under a fault schedule."""
    system = system_cls(graph, config.with_devices(devices))
    runner = QueryBatchRunner(system)
    program = make_algorithm(algorithm)
    sources = [0, 7, 19] if program.needs_source else [None] * 3
    queries = [(make_algorithm(algorithm), source) for source in sources]
    injector = None
    if faults is not None:
        injector = FaultInjector(FaultSchedule.parse(faults, seed=CHAOS_SEED))
    return runner.run(queries, injector=injector, **run_kwargs)


# ----------------------------------------------------------------------
# The chaos grid (bitwise acceptance)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("devices", GRID_DEVICES)
@pytest.mark.parametrize("system_cls", GRID_SYSTEMS)
@pytest.mark.parametrize("algorithm", GRID_ALGORITHMS)
@pytest.mark.parametrize("faults", GRID_FAULTS)
def test_chaos_grid_recovers_bitwise(faults, algorithm, system_cls, devices, graph, config):
    clean = run_batch(system_cls, graph, config, algorithm, devices)
    faulted = run_batch(system_cls, graph, config, algorithm, devices, faults=faults)
    for reference, recovered in zip(clean.results, faulted.results):
        if recovered.extra.get("fault_status") == "failed":
            # A transfer fault that exhausted the retry policy is a
            # typed terminal failure, not a recovery path.
            assert recovered.values is None
            continue
        assert recovered.converged == reference.converged
        assert np.array_equal(
            np.asarray(reference.values), np.asarray(recovered.values)
        )


@pytest.mark.parametrize("algorithm", ["pagerank", "php"])
def test_rank_style_recovery_converges_close(algorithm, graph, config):
    # The asynchronous runtime lets a task process activations produced
    # by tasks scheduled earlier in the same iteration, so re-sharding
    # after a device loss reorders the floating-point accumulation.  The
    # recovered query must still converge, to the same fixed point
    # within convergence tolerance.
    clean = run_batch(HyTGraphSystem, graph, config, algorithm, 2)
    faulted = run_batch(
        HyTGraphSystem, graph, config, algorithm, 2, faults="device-loss@2:device=0"
    )
    for reference, recovered in zip(clean.results, faulted.results):
        assert recovered.converged
        reference_values = np.asarray(reference.values)
        recovered_values = np.asarray(recovered.values)
        scale = np.abs(reference_values).max()
        assert np.abs(recovered_values - reference_values).max() <= 1e-2 * scale


def test_device_loss_grid_actually_injects(graph, config):
    # Meta-check on the grid: the device-loss cell is not vacuously
    # passing — the fault fires and the recovery machinery runs.
    faulted = run_batch(
        HyTGraphSystem,
        graph,
        config,
        "sssp",
        2,
        faults="device-loss@3:device=0",
        checkpoint_interval=2,
    )
    assert faulted.faults_injected >= 1
    assert faulted.recovery_time_s > 0.0
    assert faulted.checkpoint_time_s > 0.0
    # The loss lands one super-iteration past the last (interval-2)
    # checkpoint, so exactly that iteration is replayed per query.
    assert faulted.recovered_super_iterations >= 1
    assert faulted.extra["lost_devices"] == [0]
    clean = run_batch(HyTGraphSystem, graph, config, "sssp", 2)
    for reference, recovered in zip(clean.results, faulted.results):
        assert np.array_equal(np.asarray(reference.values), np.asarray(recovered.values))


# ----------------------------------------------------------------------
# Spec grammar and validation
# ----------------------------------------------------------------------


class TestFaultSpec:
    def test_parse_full_grammar(self):
        schedule = FaultSchedule.parse(
            "device-loss@3:device=1; transfer-flaky:p=0.05;"
            "memory-pressure@2:factor=0.5;interconnect-degrade:factor=4",
            seed=7,
        )
        kinds = [spec.kind for spec in schedule.specs]
        assert kinds == [
            FaultKind.DEVICE_LOSS,
            FaultKind.TRANSFER_FLAKY,
            FaultKind.MEMORY_PRESSURE,
            FaultKind.INTERCONNECT_DEGRADE,
        ]
        assert schedule.specs[0].at_super_iteration == 3
        assert schedule.specs[0].device == 1
        assert schedule.specs[1].probability == 0.05
        assert schedule.specs[2].factor == 0.5
        assert schedule.specs[3].factor == 4.0
        assert schedule.seed == 7

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSchedule.parse("gpu-meltdown:p=1")

    def test_parse_names_the_bad_entry(self):
        with pytest.raises(ValueError, match="transfer-flaky@x"):
            FaultSchedule.parse("device-loss;transfer-flaky@x:p=0.1")
        with pytest.raises(ValueError, match="expected"):
            FaultSchedule.parse("device-loss:p=0.5")

    def test_parse_rejects_empty(self):
        with pytest.raises(ValueError, match="empty fault schedule"):
            FaultSchedule.parse(" ; ")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="probability p in"):
            FaultSpec(FaultKind.TRANSFER_FLAKY, probability=1.5)
        with pytest.raises(ValueError, match="probability p in"):
            FaultSpec(FaultKind.TRANSFER_FLAKY)
        with pytest.raises(ValueError, match="factor in"):
            FaultSpec(FaultKind.MEMORY_PRESSURE, factor=0.0)
        with pytest.raises(ValueError, match="factor >= 1"):
            FaultSpec(FaultKind.INTERCONNECT_DEGRADE, factor=0.5)
        with pytest.raises(ValueError, match="only to device-loss"):
            FaultSpec(FaultKind.MEMORY_PRESSURE, device=0, factor=0.5)
        with pytest.raises(ValueError, match="non-negative"):
            FaultSpec(FaultKind.DEVICE_LOSS, at_super_iteration=-1)

    def test_parse_host_loss(self):
        schedule = FaultSchedule.parse("host-loss@4:host=1")
        spec = schedule.specs[0]
        assert spec.kind is FaultKind.HOST_LOSS
        assert spec.at_super_iteration == 4
        assert spec.host == 1
        # The host is optional (the cluster defaults to the last alive).
        assert FaultSchedule.parse("host-loss@2").specs[0].host is None

    def test_host_key_only_for_host_loss(self):
        with pytest.raises(ValueError, match="only to host-loss"):
            FaultSpec(FaultKind.DEVICE_LOSS, host=0)
        with pytest.raises(ValueError, match="non-negative"):
            FaultSpec(FaultKind.HOST_LOSS, host=-1)
        with pytest.raises(ValueError, match="expected host"):
            FaultSchedule.parse("host-loss@1:device=0")

    def test_schedule_splits_cluster_and_host_faults(self):
        schedule = FaultSchedule.parse(
            "host-loss@1:host=0;device-loss@2:device=0;transfer-flaky:p=0.1", seed=3
        )
        cluster_side = schedule.host_loss_specs()
        assert [spec.kind for spec in cluster_side] == [FaultKind.HOST_LOSS]
        remainder = schedule.without_host_loss()
        assert [spec.kind for spec in remainder.specs] == [
            FaultKind.DEVICE_LOSS, FaultKind.TRANSFER_FLAKY,
        ]
        assert remainder.seed == 3
        pure_cluster = FaultSchedule.parse("host-loss@1:host=0")
        assert pure_cluster.without_host_loss() is None

    def test_retry_policy(self):
        policy = RetryPolicy(max_attempts=3, backoff_base_s=1e-3, backoff_multiplier=2.0)
        assert policy.backoff_seconds(0) == 0.0
        assert policy.backoff_seconds(1) == pytest.approx(1e-3)
        assert policy.backoff_seconds(3) == pytest.approx(1e-3 * (1 + 2 + 4))
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)


# ----------------------------------------------------------------------
# Injector determinism
# ----------------------------------------------------------------------


def test_same_seed_injects_identical_fault_sequences(graph, config):
    runs = [
        run_batch(HyTGraphSystem, graph, config, "sssp", 2, faults="transfer-flaky:p=0.3")
        for _ in range(2)
    ]
    first, second = runs
    assert first.extra["fault_events"] == second.extra["fault_events"]
    assert first.makespan == second.makespan
    assert first.retries == second.retries
    assert first.retry_time_s == second.retry_time_s


# ----------------------------------------------------------------------
# Device loss, resharding, host fallback
# ----------------------------------------------------------------------


def test_device_loss_reshards_onto_survivors(graph, config):
    system = HyTGraphSystem(graph, config.with_devices(4))
    context = system.context
    cache = context.cache
    assert context.num_devices == 4
    context.lose_device(1)
    assert context.num_devices == 3
    assert context.lost_devices == [1]
    assert context.sharding.num_devices == 3
    # The cache was re-sharded in place: same object, new device maps.
    assert cache is context.cache
    assert cache.num_devices == 3
    assert len(cache.budget_bytes) == 3
    assert set(np.unique(cache.device_of)) <= {0, 1, 2}
    assert cache.invalidated_bytes > 0
    with pytest.raises(ValueError, match="outside"):
        context.lose_device(3)


def test_losing_last_device_degrades_to_host(graph, config):
    system = HyTGraphSystem(graph, config.with_devices(1))
    context = system.context
    context.lose_device(0)
    assert context.host_fallback
    assert context.time_scale > 1.0
    with pytest.raises(RuntimeError, match="already runs on the host"):
        context.lose_device(0)
    clean = run_batch(HyTGraphSystem, graph, config, "sssp", 1)
    fallen = run_batch(HyTGraphSystem, graph, config, "sssp", 1, faults="device-loss@1")
    for reference, recovered in zip(clean.results, fallen.results):
        assert np.array_equal(np.asarray(reference.values), np.asarray(recovered.values))
    assert fallen.extra["host_fallback"]
    assert fallen.makespan > clean.makespan


def test_interconnect_degradation_slows_sync(graph, config):
    clean = run_batch(HyTGraphSystem, graph, config, "sssp", 2)
    degraded = run_batch(
        HyTGraphSystem, graph, config, "sssp", 2, faults="interconnect-degrade@0:factor=8"
    )
    for reference, recovered in zip(clean.results, degraded.results):
        assert np.array_equal(np.asarray(reference.values), np.asarray(recovered.values))
    assert degraded.makespan > clean.makespan


# ----------------------------------------------------------------------
# Cache fault-recovery surface
# ----------------------------------------------------------------------


def test_cache_shrink_budget_evicts_down(graph, config):
    system = HyTGraphSystem(graph, config.with_devices(2))
    cache = system.context.cache
    original = cache.per_device_budget
    before = cache.resident_bytes
    assert before > 0
    cache.shrink_budget(0.5)
    assert cache.per_device_budget == original // 2
    for device in range(cache.num_devices):
        assert cache.used_bytes[device] <= cache.budget_bytes[device]
    assert cache.resident_bytes < before
    with pytest.raises(ValueError, match="in \\[0, 1\\]"):
        cache.shrink_budget(1.5)


def test_cache_invalidate_counts_separately(graph, config):
    system = HyTGraphSystem(graph, config.with_devices(2))
    cache = system.context.cache
    resident = cache.resident_bytes
    evictions_before = cache.counters()["evictions"]
    cache.invalidate()
    assert cache.resident_bytes == 0
    assert cache.invalidated_bytes == resident
    # Fault-driven invalidation is not billed as policy evictions.
    assert cache.counters()["evictions"] == evictions_before


# ----------------------------------------------------------------------
# Permanent failures, deadlines, the breaker, the service surface
# ----------------------------------------------------------------------


def test_exhausted_retries_fail_the_query_typed(graph, config):
    faulted = run_batch(
        HyTGraphSystem, graph, config, "sssp", 2, faults="transfer-flaky:p=1.0"
    )
    assert faulted.failed_queries == faulted.num_queries
    for result in faulted.results:
        assert result.extra["fault_status"] == "failed"
        assert result.extra["fault_attempts"] == RetryPolicy().max_attempts
        assert "persisted" in result.extra["fault_cause"]
        assert result.values is None
        assert not result.converged


def test_deadline_cancellation_is_typed(graph, config):
    clean = run_batch(HyTGraphSystem, graph, config, "sssp", 1)
    generous = clean.makespan * 10
    unbounded = run_batch(
        HyTGraphSystem, graph, config, "sssp", 1, deadlines=[generous, None, None]
    )
    assert all(result.converged for result in unbounded.results)
    cancelled = run_batch(
        HyTGraphSystem, graph, config, "sssp", 1, deadlines=[1e-12, None, None]
    )
    assert cancelled.results[0].extra["fault_status"] == "cancelled"
    assert "deadline" in cancelled.results[0].extra["fault_cause"]
    assert cancelled.cancelled_queries == 1
    assert cancelled.results[1].converged and cancelled.results[2].converged


def test_circuit_breaker_state_machine():
    breaker = CircuitBreaker(threshold=2, cooldown=2)
    breaker.record(1)
    assert not breaker.open
    breaker.record(3)
    assert breaker.open
    assert breaker.trips == 1
    breaker.record(0)
    assert breaker.open  # one clean wave < cooldown
    breaker.record(0)
    assert not breaker.open
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)


def make_service(graph, config, devices=2, **overrides):
    system = HyTGraphSystem(graph, config.with_devices(devices))
    service_config = ServiceConfig(system="hytgraph", devices=devices, **overrides)
    return GraphService(service_config, system=system)


def test_service_surfaces_query_failed(graph, config):
    service = make_service(
        graph, config, faults="transfer-flaky:p=1.0", breaker_threshold=1
    )
    handle = service.submit(QueryRequest("sssp", source=0))
    service.drain()
    assert handle.status is RequestStatus.FAILED
    assert handle.done
    with pytest.raises(QueryFailed, match="persisted") as excinfo:
        handle.result()
    assert excinfo.value.attempts == RetryPolicy().max_attempts
    stats = service.stats()
    assert stats.failed == 1
    assert stats.breaker_open
    assert stats.faults_injected >= 1


def test_open_breaker_sheds_queued_bulk_work(graph, config):
    service = make_service(
        graph, config, faults="transfer-flaky:p=1.0", breaker_threshold=1
    )
    service.submit(QueryRequest("sssp", source=0))
    service.drain()
    assert service.breaker.open
    bulk = service.submit(QueryRequest("sssp", source=7, priority=Priority.BULK))
    interactive = service.submit(
        QueryRequest("bfs", source=3, priority=Priority.INTERACTIVE)
    )
    service.drain()
    assert bulk.status is RequestStatus.FAILED
    assert "circuit breaker open" in bulk.fault_cause
    with pytest.raises(QueryFailed, match="circuit breaker"):
        bulk.result()
    # The cheaper classes are still served (they may fail on the p=1.0
    # faults, but they are never shed by the breaker).
    assert interactive.status is not RequestStatus.QUEUED
    assert "circuit breaker" not in (interactive.fault_cause or "")


def test_service_deadline_enforcement_cancels(graph, config):
    service = make_service(
        graph, config, deadline_s=1e-12, enforce_deadlines=True
    )
    handle = service.submit(QueryRequest("sssp", source=0))
    service.drain()
    assert handle.status is RequestStatus.CANCELLED
    with pytest.raises(QueryFailed, match="cancelled"):
        handle.result()
    stats = service.stats()
    assert stats.cancelled == 1
    assert stats.deadline_missed == 1


def test_service_recovers_device_loss_bitwise(graph, config):
    reference = make_service(graph, config)
    faulted = make_service(
        graph, config, faults="device-loss@2:device=1", chaos_seed=CHAOS_SEED
    )
    sources = [0, 7, 19]
    clean_handles = [reference.submit(QueryRequest("sssp", source=s)) for s in sources]
    fault_handles = [faulted.submit(QueryRequest("sssp", source=s)) for s in sources]
    reference.drain()
    faulted.drain()
    for clean_handle, fault_handle in zip(clean_handles, fault_handles):
        assert np.array_equal(
            np.asarray(clean_handle.result().values),
            np.asarray(fault_handle.result().values),
        )
    health = faulted.device_health()
    assert health["configured"] == 2
    assert health["alive"] == 1
    assert health["lost"] == [1]
    assert not health["host_fallback"]


def test_service_config_validation():
    with pytest.raises(ValueError, match="deadline_s must be positive"):
        ServiceConfig(deadline_s=0.0)
    with pytest.raises(ValueError, match="deadline_s must be positive"):
        ServiceConfig(deadline_s=-1.0)
    with pytest.raises(ValueError, match="admission_budget_bytes"):
        ServiceConfig(admission_budget_bytes=-1)
    with pytest.raises(ValueError, match="unknown scheduling policy"):
        ServiceConfig(scheduling="round-robin")
    with pytest.raises(ValueError, match="unknown admission policy"):
        ServiceConfig(admission_policy="drop")
    with pytest.raises(ValueError, match="unknown cache policy"):
        ServiceConfig(cache_policy="mru")
    with pytest.raises(ValueError, match="checkpoint_interval"):
        ServiceConfig(checkpoint_interval=0)
    with pytest.raises(ValueError, match="breaker_threshold"):
        ServiceConfig(breaker_threshold=0)
    with pytest.raises(ValueError, match="breaker_cooldown"):
        ServiceConfig(breaker_cooldown=0)
    with pytest.raises(ValueError, match="unknown fault kind"):
        ServiceConfig(faults="explosion:p=1")
    parsed = ServiceConfig(faults="device-loss@1", chaos_seed=9)
    assert isinstance(parsed.faults, FaultSchedule)
    assert parsed.faults.seed == 9


# ----------------------------------------------------------------------
# Checkpoint roundtrip (the property-based version lives in
# test_property_based.py; this is the directed one)
# ----------------------------------------------------------------------


def test_checkpoint_restore_is_bitwise(graph, config):
    system = HyTGraphSystem(graph, config.with_devices(2))
    session = system.start_session(make_algorithm("sssp"), 0)
    driver = system.driver
    for _ in range(2):
        plan = driver.plan(system, session)
        session.result.iterations.append(driver.finish(plan))
        session.iteration += 1
    checkpoint = driver.capture_checkpoint(session)
    snapshot = {key: value.copy() for key, value in session.state.arrays.items()}
    pending_snapshot = session.pending.copy()
    records = len(session.result.iterations)
    # Run further, then roll back.
    for _ in range(2):
        plan = driver.plan(system, session)
        session.result.iterations.append(driver.finish(plan))
        session.iteration += 1
    cost = driver.restore_checkpoint(session, checkpoint)
    assert cost > 0.0
    assert session.iteration == checkpoint.iteration
    assert len(session.result.iterations) == records
    assert np.array_equal(session.pending, pending_snapshot)
    for key, value in snapshot.items():
        assert np.array_equal(session.state.arrays[key], value)
    # The checkpoint survives its restore and can be reused.
    assert isinstance(checkpoint, QueryCheckpoint)
    assert checkpoint.checkpoint_bytes > 0


# ----------------------------------------------------------------------
# Host loss (the cluster-level cell of the chaos grid)
# ----------------------------------------------------------------------


def test_single_host_injector_skips_host_loss(graph, config):
    # A lone GraphService cannot lose "a host"; the injector records the
    # spec as skipped instead of misfiring it, and serving is unchanged.
    faulted = run_batch(
        HyTGraphSystem, graph, config, "sssp", 2, faults="host-loss@1:host=0"
    )
    clean = run_batch(HyTGraphSystem, graph, config, "sssp", 2)
    assert faulted.faults_injected == 0
    for reference, result in zip(clean.results, faulted.results):
        assert np.array_equal(np.asarray(reference.values), np.asarray(result.values))


@pytest.mark.parametrize("algorithm", GRID_ALGORITHMS)
def test_cluster_host_loss_grid_recovers_bitwise(algorithm, graph, config):
    # The host-loss cell runs at the cluster layer: a two-host cluster
    # loses host 1 mid-backlog and the migrated queries must complete
    # bitwise equal to a fault-free single host, under every chaos seed.
    from repro.cluster import ClusterConfig, ClusterService

    source = 0 if make_algorithm(algorithm).needs_source else None
    served = graph if algorithm != "cc" else graph.symmetrize()
    hardware = HardwareConfig(
        gpu_memory_bytes=served.edge_data_bytes // 2, pcie_bandwidth=1e9
    )
    requests = [
        QueryRequest(algorithm=algorithm, source=source, label="s%d" % index)
        for index in range(6)
    ]
    reference = GraphService(
        ServiceConfig(system="hytgraph"), graph=served, hardware=hardware
    )
    expected = [reference.run(request) for request in requests]

    probe = GraphService(
        ServiceConfig(system="hytgraph"), graph=served, hardware=hardware
    )
    estimate = probe.admission.estimate_request_bytes(*probe.submit(requests[0])._query)
    cluster = ClusterService(
        ClusterConfig(
            hosts=2,
            service=ServiceConfig(
                system="hytgraph",
                admission_budget_bytes=int(estimate * 1.5),
                faults="host-loss@1:host=1",
                chaos_seed=CHAOS_SEED,
            ),
        ),
        graph=served,
        hardware=hardware,
    )
    handles = cluster.submit_many(requests)
    cluster.drain()
    assert cluster.alive_hosts() == [0]
    assert cluster.router.failovers > 0
    for handle, reference_result in zip(handles, expected):
        assert handle.status is RequestStatus.DONE
        assert np.array_equal(
            np.asarray(handle.result().values), np.asarray(reference_result.values)
        )
