"""Equivalence tests for the scatter-reduce kernel layer.

The kernel layer (:mod:`repro.core.kernels`) replaces the seed
``np.add.at`` / ``np.minimum.at`` + snapshot + ``np.unique`` code paths.
Its contract is *bitwise* equality, not approximate equality: every
kernel must produce exactly the state the unbuffered ufunc would, and the
fused ``push_and_activate`` must report exactly the activation set the
seed formulation computed.  These property-style tests check that
contract on seeded random inputs covering empty frontiers, self-loops,
duplicate destinations and both the dense and the sparse dispatch paths,
for the raw kernels, for every ported ``process()`` and for full engine
runs.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.backends as backend_registry
import repro.core.backends.numpy_backend as numpy_backend
from repro.algorithms.bfs import BFS
from repro.algorithms.cc import ConnectedComponents
from repro.algorithms.pagerank import DeltaPageRank
from repro.algorithms.php import PHP
from repro.algorithms.sssp import SSSP
from repro.core.kernels import (
    legacy_kernels,
    push_and_activate,
    scatter_add,
    scatter_max,
    scatter_min,
    using_legacy_kernels,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_graph, uniform_random_graph
from repro.systems.hytgraph import HyTGraphSystem


def bits(array: np.ndarray) -> np.ndarray:
    """Reinterpret float64 values as uint64 so equality is bit-exact."""
    return np.asarray(array, dtype=np.float64).view(np.uint64)


def random_batches(seed: int, trials: int):
    """Seeded random (target, destinations, values) batches.

    Sizes straddle the dense/sparse boundary and include empty batches
    and heavy duplication (num_targets can be far smaller than the batch).
    """
    rng = np.random.default_rng(seed)
    for _ in range(trials):
        num_targets = int(rng.integers(1, 300))
        num_messages = int(rng.integers(0, 3 * num_targets))
        destinations = rng.integers(0, num_targets, size=num_messages)
        values = rng.normal(size=num_messages) * 10.0 ** float(rng.integers(-3, 4))
        target = rng.normal(size=num_targets) * 10.0 ** float(rng.integers(-3, 4))
        yield target, destinations, values


@pytest.fixture(params=["native", "portable"])
def kernel_dispatch(request, monkeypatch):
    """Run each test under both kernel dispatch modes.

    ``native`` uses the indexed-ufunc fast paths of NumPy >= 1.25;
    ``portable`` forces the seeded-bincount / sort+reduceat fallbacks so
    the segment kernels are exercised regardless of the installed NumPy.
    Both modes live in the numpy reference backend; under a non-numpy
    active backend (e.g. ``REPRO_BACKEND=numba`` in CI) the flag is
    harmless and the grid simply runs that backend against the references.
    """
    monkeypatch.setattr(numpy_backend, "_FORCE_PORTABLE", request.param == "portable")
    return request.param


@pytest.fixture(params=["numpy", "numba", "array-api"])
def each_backend(request):
    """Run the raw-kernel grid against every installed compute backend.

    Backends whose optional dependency is missing are skipped with an
    explicit reason rather than silently shrinking the grid.
    """
    name = request.param
    if name not in backend_registry.available_backends():
        pytest.skip(f"backend {name!r} is not installed in this environment")
    with backend_registry.use_backend(name):
        yield name


class TestScatterOps:
    def test_scatter_add_matches_ufunc_at_bitwise(self, each_backend, kernel_dispatch):
        for target, destinations, values in random_batches(seed=1, trials=150):
            expected = target.copy()
            np.add.at(expected, destinations, values)
            actual = scatter_add(target.copy(), destinations, values)
            np.testing.assert_array_equal(bits(expected), bits(actual))

    def test_scatter_min_matches_ufunc_at_bitwise(self, each_backend, kernel_dispatch):
        for target, destinations, values in random_batches(seed=2, trials=150):
            expected = target.copy()
            np.minimum.at(expected, destinations, values)
            actual = scatter_min(target.copy(), destinations, values)
            np.testing.assert_array_equal(bits(expected), bits(actual))

    def test_scatter_max_matches_ufunc_at_bitwise(self, each_backend, kernel_dispatch):
        for target, destinations, values in random_batches(seed=3, trials=150):
            expected = target.copy()
            np.maximum.at(expected, destinations, values)
            actual = scatter_max(target.copy(), destinations, values)
            np.testing.assert_array_equal(bits(expected), bits(actual))

    def test_empty_batch_is_a_no_op(self, each_backend, kernel_dispatch):
        target = np.array([1.0, 2.0, 3.0])
        empty = np.zeros(0, dtype=np.int64)
        for op in (scatter_add, scatter_min, scatter_max):
            out = op(target.copy(), empty, np.zeros(0))
            np.testing.assert_array_equal(out, target)

    def test_duplicate_destinations_fold_in_message_order(self, each_backend, kernel_dispatch):
        # The exactness claim is about fold order: target, v1, v2, ... in
        # original message order, even for many duplicates of one bin.
        target = np.array([0.1])
        values = np.array([1e16, 1.0, -1e16, 3.0, 7.0])
        destinations = np.zeros(values.size, dtype=np.int64)
        expected = target.copy()
        np.add.at(expected, destinations, values)
        actual = scatter_add(target.copy(), destinations, values)
        np.testing.assert_array_equal(bits(expected), bits(actual))


class TestPushAndActivate:
    def legacy_reference(self, target, destinations, values, combine, threshold):
        """The seed formulation: ufunc.at + snapshot + np.unique."""
        if combine == "add":
            np.add.at(target, destinations, values)
            active = target[destinations] > threshold
            return np.unique(destinations[active])
        previous = target[destinations].copy()
        if combine == "min":
            np.minimum.at(target, destinations, values)
            changed = target[destinations] < previous
        else:
            np.maximum.at(target, destinations, values)
            changed = target[destinations] > previous
        return np.unique(destinations[changed])

    @pytest.mark.parametrize("combine", ["min", "max", "add"])
    def test_matches_legacy_formulation(self, each_backend, kernel_dispatch, combine):
        threshold = 0.5 if combine == "add" else None
        kwargs = {"threshold": threshold} if combine == "add" else {}
        for target, destinations, values in random_batches(seed=4, trials=150):
            expected_state = target.copy()
            expected_active = self.legacy_reference(
                expected_state, destinations, values, combine, threshold
            )
            actual_state = target.copy()
            actual_active = push_and_activate(
                actual_state, destinations, values, combine=combine, **kwargs
            )
            np.testing.assert_array_equal(bits(expected_state), bits(actual_state))
            np.testing.assert_array_equal(expected_active, actual_active)
            assert actual_active.dtype == np.int64

    def test_empty_batch_returns_empty_frontier(self, each_backend, kernel_dispatch):
        target = np.ones(5)
        out = push_and_activate(target, np.zeros(0, dtype=np.int64), np.zeros(0), combine="min")
        assert out.size == 0 and out.dtype == np.int64

    def test_add_requires_threshold(self, each_backend, kernel_dispatch):
        with pytest.raises(ValueError, match="threshold"):
            push_and_activate(np.ones(4), np.array([1]), np.array([1.0]), combine="add")

    def test_unknown_combine_rejected(self):
        with pytest.raises(ValueError, match="combine"):
            push_and_activate(np.ones(4), np.array([1]), np.array([1.0]), combine="sum")

    def test_dense_and_sparse_paths_agree(self, each_backend, kernel_dispatch):
        # The same logical batch must give the same answer on both sides
        # of the density heuristic; shrink/grow the target to flip it.
        rng = np.random.default_rng(9)
        destinations = rng.integers(0, 50, size=200)
        values = rng.random(200)
        dense_target = rng.random(50)  # 200 * 8 >= 50 -> dense
        sparse_target = np.concatenate([dense_target, rng.random(50_000)])  # -> sparse
        dense_active = push_and_activate(dense_target, destinations, values, combine="add", threshold=0.75)
        sparse_active = push_and_activate(sparse_target, destinations, values, combine="add", threshold=0.75)
        np.testing.assert_array_equal(dense_active, sparse_active)
        np.testing.assert_array_equal(bits(dense_target), bits(sparse_target[:50]))

    def test_legacy_context_toggles_dispatch(self):
        assert not using_legacy_kernels()
        with legacy_kernels():
            assert using_legacy_kernels()
        assert not using_legacy_kernels()


def seed_process_reference(algorithm, graph, state_arrays, active_vertices):
    """Verbatim seed implementations of every ``process()`` hot path."""
    from repro.algorithms.base import gather_edge_indices

    active_vertices = np.asarray(active_vertices, dtype=np.int64)
    if algorithm in ("sssp", "bfs", "cc"):
        key = {"sssp": "dist", "bfs": "level", "cc": "label"}[algorithm]
        target = state_arrays[key]
        edge_indices, sources = gather_edge_indices(graph, active_vertices)
        if edge_indices.size == 0:
            return np.zeros(0, dtype=np.int64)
        destinations = graph.column_index[edge_indices]
        if algorithm == "sssp":
            candidates = target[sources] + graph.edge_value[edge_indices]
        elif algorithm == "bfs":
            candidates = target[sources] + 1.0
        else:
            candidates = target[sources]
        previous = target[destinations].copy()
        np.minimum.at(target, destinations, candidates)
        improved = target[destinations] < previous
        return np.unique(destinations[improved])

    if active_vertices.size == 0:
        return np.zeros(0, dtype=np.int64)
    values_key, rate, tolerance = {
        "pr": ("rank", 0.85, 1e-3),
        "php": ("php", 0.8, 1e-4),
    }[algorithm]
    values, deltas = state_arrays[values_key], state_arrays["delta"]
    outgoing = deltas[active_vertices].copy()
    values[active_vertices] += outgoing
    deltas[active_vertices] = 0.0
    degrees = graph.out_degrees[active_vertices]
    has_edges = degrees > 0
    senders = active_vertices[has_edges]
    if senders.size == 0:
        return np.zeros(0, dtype=np.int64)
    per_edge_share = rate * outgoing[has_edges] / degrees[has_edges]
    edge_indices, _ = gather_edge_indices(graph, senders)
    destinations = graph.column_index[edge_indices]
    shares = np.repeat(per_edge_share, degrees[has_edges])
    if algorithm == "php":
        source = int(state_arrays["source"][0])
        keep = destinations != source
        destinations = destinations[keep]
        shares = shares[keep]
        if destinations.size == 0:
            return np.zeros(0, dtype=np.int64)
        np.add.at(deltas, destinations, shares)
        active = deltas[destinations] > tolerance
        return np.unique(destinations[active])
    previous = deltas[destinations] > tolerance
    np.add.at(deltas, destinations, shares)
    now_active = deltas[destinations] > tolerance
    newly = destinations[now_active & ~previous]
    return np.unique(np.concatenate([newly, destinations[now_active]]))


class TestPortedAlgorithms:
    """Each ported ``process()`` must match the seed implementation bitwise."""

    def graphs(self):
        self_loops = CSRGraph.from_edges(
            [(0, 0), (0, 1), (1, 1), (1, 2), (2, 0), (2, 2), (3, 1)],
            num_vertices=5,  # vertex 4 is isolated
            weights=[1.0, 2.0, 3.0, 1.0, 5.0, 2.0, 1.0],
            name="self-loops",
        )
        multi = CSRGraph.from_edges(
            [(0, 1), (0, 1), (0, 2), (1, 2), (1, 2), (1, 2), (2, 0)],
            num_vertices=3,
            weights=[4.0, 2.0, 1.0, 3.0, 1.0, 2.0, 1.0],
            name="duplicate-edges",
            sort_neighbors=True,
        )
        random_graph = uniform_random_graph(80, 600, seed=11, weighted=True)
        scale_free = rmat_graph(128, 1200, seed=13, weighted=True)
        return [self_loops, multi, random_graph, scale_free]

    def frontiers(self, graph, rng):
        yield np.zeros(0, dtype=np.int64)  # empty frontier
        yield np.arange(graph.num_vertices, dtype=np.int64)  # everything
        for _ in range(4):
            count = int(rng.integers(1, graph.num_vertices + 1))
            yield np.sort(rng.choice(graph.num_vertices, size=count, replace=False))

    @pytest.mark.parametrize(
        "name, program",
        [
            ("sssp", SSSP()),
            ("bfs", BFS()),
            ("cc", ConnectedComponents()),
            ("pr", DeltaPageRank()),
            ("php", PHP()),
        ],
    )
    def test_process_matches_seed_bitwise(self, kernel_dispatch, name, program):
        rng = np.random.default_rng(17)
        for graph in self.graphs():
            source = 0
            state = program.create_state(graph, source if program.needs_source else None)
            # Push some mass around first so the state is non-trivial.
            warm = np.arange(0, graph.num_vertices, 2, dtype=np.int64)
            program.process(graph, state, warm)
            for frontier in self.frontiers(graph, rng):
                expected_arrays = {key: value.copy() for key, value in state.arrays.items()}
                expected_active = seed_process_reference(name, graph, expected_arrays, frontier)
                actual_state = state.copy()
                actual_active = program.process(graph, actual_state, frontier)
                np.testing.assert_array_equal(expected_active, actual_active)
                for key in expected_arrays:
                    np.testing.assert_array_equal(
                        bits(expected_arrays[key]), bits(actual_state[key]), err_msg="%s/%s" % (name, key)
                    )

    def test_pagerank_activation_includes_already_hot_destinations(self, kernel_dispatch):
        # The satellite fix: the returned frontier is exactly the unique
        # destinations above tolerance, with no duplicate-unique pass.
        graph = CSRGraph.from_edges([(0, 1), (0, 2), (2, 1)], num_vertices=3)
        program = DeltaPageRank(tolerance=1e-6)
        state = program.create_state(graph)
        state["delta"][1] = 1.0  # destination already above tolerance
        active = program.process(graph, state, np.array([0], dtype=np.int64))
        np.testing.assert_array_equal(active, [1, 2])


class TestEngineEquivalence:
    """Full engine runs agree between seed kernels and the kernel layer."""

    @pytest.mark.parametrize(
        "program, needs_source",
        [
            (SSSP(), True),
            (BFS(), True),
            (DeltaPageRank(), False),
            (PHP(), True),
        ],
    )
    def test_hytgraph_run_identical_under_both_dispatches(self, program, needs_source):
        graph = rmat_graph(256, 2500, seed=21, weighted=True)
        system = HyTGraphSystem(graph)
        kwargs = {"source": 3} if needs_source else {}
        with legacy_kernels():
            result_legacy = system.run(program, **kwargs)
        result_fused = system.run(program, **kwargs)
        np.testing.assert_array_equal(
            bits(result_legacy.values), bits(result_fused.values)
        )
        assert len(result_legacy.iterations) == len(result_fused.iterations)
        for legacy_stats, fused_stats in zip(result_legacy.iterations, result_fused.iterations):
            assert legacy_stats.active_vertices == fused_stats.active_vertices
            assert legacy_stats.processed_edges == fused_stats.processed_edges
            assert legacy_stats.transfer_bytes == fused_stats.transfer_bytes

    def test_reference_solvers_unchanged_by_dispatch(self):
        from repro.algorithms.reference import pagerank_values, php_values

        graph = rmat_graph(200, 1500, seed=23)
        with legacy_kernels():
            pr_legacy = pagerank_values(graph, max_iterations=50)
            php_legacy = php_values(graph, source=0, max_iterations=50)
        np.testing.assert_array_equal(bits(pr_legacy), bits(pagerank_values(graph, max_iterations=50)))
        np.testing.assert_array_equal(bits(php_legacy), bits(php_values(graph, source=0, max_iterations=50)))


class TestTransferTaskBatching:
    """transfer_task must reproduce the per-partition transfer() loop."""

    def _loop_reference(self, engine, partitions, active, cuts):
        bytes_total, transfer_time, cpu_time, overlapped = 0, 0.0, 0.0, False
        for position, partition in enumerate(partitions):
            outcome = engine.transfer(partition, active[cuts[position] : cuts[position + 1]])
            bytes_total += outcome.bytes_transferred
            transfer_time += outcome.transfer_time
            cpu_time += outcome.cpu_time
            overlapped = overlapped or outcome.overlapped
        return bytes_total, transfer_time, cpu_time, overlapped

    @pytest.mark.parametrize("engine_name", ["filter", "compaction", "zero_copy"])
    def test_matches_per_partition_loop(self, engine_name):
        from repro.graph.partition import partition_by_count
        from repro.sim.config import default_config
        from repro.transfer.explicit_compaction import ExplicitCompactionEngine
        from repro.transfer.explicit_filter import ExplicitFilterEngine
        from repro.transfer.zero_copy import ZeroCopyEngine

        graph = rmat_graph(300, 2500, seed=29, weighted=True)
        config = default_config()
        partitioning = partition_by_count(graph, 7)
        engine = {
            "filter": ExplicitFilterEngine,
            "compaction": ExplicitCompactionEngine,
            "zero_copy": ZeroCopyEngine,
        }[engine_name](graph, config)

        rng = np.random.default_rng(31)
        for trial in range(10):
            count = int(rng.integers(0, graph.num_vertices))
            active = np.sort(rng.choice(graph.num_vertices, size=count, replace=False))
            partitions = [partitioning[index] for index in range(partitioning.num_partitions)]
            boundaries = [partition.vertex_start for partition in partitions]
            boundaries.append(partitions[-1].vertex_end)
            cuts = np.searchsorted(active, boundaries)
            expected = self._loop_reference(engine, partitions, active, cuts)
            outcome = engine.transfer_task(partitions, active, cuts)
            assert outcome.bytes_transferred == expected[0]
            assert outcome.transfer_time == pytest.approx(expected[1], rel=0, abs=0)
            assert outcome.cpu_time == pytest.approx(expected[2], rel=0, abs=0)
            assert outcome.overlapped == expected[3]
