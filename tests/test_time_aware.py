"""Tests of time-aware serving (:mod:`repro.service` + runtime preemption).

Five guarantees anchor the event-driven serving path:

1. **Arrival processes** — Poisson / bursty / diurnal generators are
   seed-deterministic (same seed, identical trace), strictly ordered in
   time, and hit their configured long-run mean rate empirically.
2. **Event-driven waves** — waves form only over requests that have
   arrived by the service clock, the clock jumps over idle gaps, and
   latency/queue-wait are measured from each request's arrival stamp.
3. **Preemption invariants** — a BULK query preempted at super-iteration
   boundaries and resumed from its checkpoint converges to per-vertex
   values bitwise equal to an uninterrupted run, across HyTGraph,
   ExpTM-F and Subway; with preemption off nothing changes.
4. **Per-class cache budgets** — BULK fills are capped at their class
   budget and never displace a better class's resident working set;
   with no budgets configured the cache is bitwise the classless one.
5. **Replay harness** — streamed replays account for every query,
   detach finished handles (bounded memory), and the seeded bitwise
   verification sample matches solo runs.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.cache import CacheManager
from repro.graph.generators import rmat_graph
from repro.graph.partition import ShardedPartitioning, partition_by_count
from repro.service import (
    ARRIVAL_PROCESSES,
    GraphService,
    Priority,
    QueryRequest,
    ReplayHarness,
    RequestStatus,
    ServiceConfig,
    arrival_times,
    iter_arrival_times,
    timed_mixed_trace,
)
from repro.sim.config import HardwareConfig

PREEMPTIBLE_SYSTEMS = ["hytgraph", "exptm-f", "subway"]


@pytest.fixture(scope="module")
def graph():
    """One weighted graph every trace algorithm can run against."""
    return rmat_graph(400, 3200, seed=11, weighted=True, name="rmat-timed")


def _transfer_bound_config(graph):
    return HardwareConfig(gpu_memory_bytes=graph.edge_data_bytes // 2, pcie_bandwidth=1e9)


def _service(graph, **config_kwargs):
    config = ServiceConfig(**config_kwargs)
    return GraphService(config, graph=graph, hardware=_transfer_bound_config(graph))


# ----------------------------------------------------------------------
# (1) arrival processes
# ----------------------------------------------------------------------


class TestArrivalProcesses:
    @pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
    def test_same_seed_identical_trace(self, process):
        first = arrival_times(process, rate=100.0, count=500, seed=42)
        second = arrival_times(process, rate=100.0, count=500, seed=42)
        assert np.array_equal(first, second)

    @pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
    def test_different_seeds_differ(self, process):
        first = arrival_times(process, rate=100.0, count=200, seed=0)
        second = arrival_times(process, rate=100.0, count=200, seed=1)
        assert not np.array_equal(first, second)

    @pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
    def test_strictly_increasing_nonnegative(self, process):
        times = arrival_times(process, rate=50.0, count=400, seed=3)
        assert times[0] >= 0.0
        assert np.all(np.diff(times) > 0)

    @pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
    def test_empirical_rate_matches_configured(self, process):
        rate = 250.0
        count = 6000
        times = arrival_times(process, rate=rate, count=count, seed=8)
        empirical = count / times[-1]
        # All three processes are parametrized to share the long-run
        # mean rate; 6000 arrivals pin the sample mean within ~10%.
        assert empirical == pytest.approx(rate, rel=0.10)

    def test_streaming_iterator_matches_materialized(self):
        streamed = list(iter_arrival_times("bursty", 80.0, 100, seed=5))
        assert np.array_equal(np.asarray(streamed), arrival_times("bursty", 80.0, 100, seed=5))

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            arrival_times("weibull", 1.0, 10)
        with pytest.raises(ValueError, match="rate must be positive"):
            arrival_times("poisson", 0.0, 10)
        with pytest.raises(ValueError, match="count must be non-negative"):
            arrival_times("poisson", 1.0, -1)
        with pytest.raises(ValueError, match="burstiness"):
            list(iter_arrival_times("bursty", 1.0, 1, burstiness=1.0))
        with pytest.raises(ValueError, match="burst_fraction"):
            list(iter_arrival_times("bursty", 1.0, 1, burst_fraction=1.0))
        with pytest.raises(ValueError, match="amplitude"):
            list(iter_arrival_times("diurnal", 1.0, 1, amplitude=1.5))

    def test_timed_mixed_trace_deterministic(self, graph):
        def snapshot():
            return [
                (r.algorithm, r.source, r.priority, r.arrival_s, r.deadline_s)
                for r in timed_mixed_trace(graph, 200, rate=100.0, seed=13, interactive_sla_s=0.5)
            ]

        assert snapshot() == snapshot()

    def test_timed_mixed_trace_mix_and_stamps(self, graph):
        requests = list(
            timed_mixed_trace(
                graph, 400, rate=100.0, seed=2,
                interactive_fraction=0.6, bulk_fraction=0.2, interactive_sla_s=0.25,
            )
        )
        assert len(requests) == 400
        classes = [r.priority for r in requests]
        interactive = classes.count(Priority.INTERACTIVE)
        bulk = classes.count(Priority.BULK)
        assert interactive == pytest.approx(240, abs=60)
        assert bulk == pytest.approx(80, abs=40)
        assert all(r.arrival_s >= 0 for r in requests)
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        for request in requests:
            if request.priority is Priority.INTERACTIVE:
                assert request.deadline_s == 0.25
            else:
                assert request.deadline_s is None


# ----------------------------------------------------------------------
# (2) event-driven serving
# ----------------------------------------------------------------------


class TestEventDrivenServing:
    def test_wave_forms_only_over_arrived_requests(self, graph):
        service = _service(graph)
        early = service.submit(QueryRequest("bfs", source=0, arrival_s=0.0))
        late = service.submit(QueryRequest("bfs", source=1, arrival_s=1000.0))
        batch = service.step()
        assert batch is not None
        assert early.status is RequestStatus.DONE
        assert late.status is RequestStatus.QUEUED

    def test_clock_jumps_idle_gaps_and_latency_runs_from_arrival(self, graph):
        service = _service(graph)
        first = service.submit(QueryRequest("bfs", source=0, arrival_s=0.0))
        second = service.submit(QueryRequest("bfs", source=1, arrival_s=5.0))
        service.drain()
        # The second request only exists from t=5; its latency must be
        # its own service time, not five idle seconds of queue wait.
        assert first.latency_s < 1.0
        assert second.latency_s < 1.0
        assert second.queue_wait_s == 0.0
        assert service._clock_s >= 5.0

    def test_queue_wait_measured_from_arrival(self, graph):
        # Both requests arrive at t=0 but a zero admission budget is not
        # used here; instead the second waits for the first wave under a
        # one-request budget.
        estimate = _service(graph).admission.estimate_request_bytes(
            make_algorithm("bfs"), 0
        )
        service = _service(graph, admission_budget_bytes=estimate)
        first = service.submit(QueryRequest("bfs", source=0))
        second = service.submit(QueryRequest("bfs", source=1))
        service.drain()
        assert first.queue_wait_s == 0.0
        assert second.queue_wait_s > 0.0
        assert second.latency_s > second.queue_wait_s

    def test_arrival_stamped_values_bitwise_equal_solo(self, graph):
        service = _service(graph)
        handles = [
            service.submit(QueryRequest("bfs", source=index, arrival_s=0.001 * index))
            for index in range(4)
        ]
        service.drain()
        for index, handle in enumerate(handles):
            solo = service.system.run(make_algorithm("bfs"), source=index)
            assert np.array_equal(handle.result().values, solo.values)

    def test_stats_track_waves_and_preemptions(self, graph):
        service = _service(graph)
        service.submit(QueryRequest("bfs", source=0, arrival_s=0.0))
        service.submit(QueryRequest("bfs", source=1, arrival_s=50.0))
        service.drain()
        stats = service.stats()
        assert stats.waves == 2
        assert stats.preemptions == 0
        assert stats.completed == 2

    def test_harvest_detaches_finished_handles(self, graph):
        service = _service(graph)
        for index in range(3):
            service.submit(QueryRequest("bfs", source=index))
        service.drain()
        finished, batches = service.harvest()
        assert len(finished) == 3
        assert len(batches) >= 1
        assert service._handles == []
        assert service.batches == []
        # The cumulative counters survive the harvest.
        assert service.stats().waves >= 1


# ----------------------------------------------------------------------
# (3) preemption invariants
# ----------------------------------------------------------------------


def _mid_run_scenario(graph, system_name, preemption):
    """BULK PageRank at t=0; INTERACTIVE BFS arriving mid-run."""
    service = _service(graph, system=system_name, preemption=preemption)
    solo = service.system.run(make_algorithm("pagerank"))
    mid_arrival = solo.total_time * 0.3
    bulk = service.submit(QueryRequest("pagerank", priority=Priority.BULK, arrival_s=0.0))
    lookup = service.submit(
        QueryRequest("bfs", source=0, priority=Priority.INTERACTIVE, arrival_s=mid_arrival)
    )
    service.drain()
    return service, solo, bulk, lookup


class TestPreemption:
    @pytest.mark.parametrize("system_name", PREEMPTIBLE_SYSTEMS)
    def test_preempted_bulk_bitwise_equal_uninterrupted(self, graph, system_name):
        service, solo, bulk, lookup = _mid_run_scenario(graph, system_name, preemption=True)
        assert bulk.preemptions >= 1
        assert bulk.status is RequestStatus.DONE
        assert np.array_equal(bulk.result().values, solo.values)
        solo_bfs = service.system.run(make_algorithm("bfs"), source=0)
        assert np.array_equal(lookup.result().values, solo_bfs.values)

    @pytest.mark.parametrize("system_name", PREEMPTIBLE_SYSTEMS)
    def test_preemption_off_runs_to_completion(self, graph, system_name):
        service, solo, bulk, lookup = _mid_run_scenario(graph, system_name, preemption=False)
        assert bulk.preemptions == 0
        assert np.array_equal(bulk.result().values, solo.values)

    def test_preemption_improves_interactive_latency(self, graph):
        _, _, _, waited = _mid_run_scenario(graph, "hytgraph", preemption=False)
        _, _, _, served = _mid_run_scenario(graph, "hytgraph", preemption=True)
        assert served.latency_s < waited.latency_s

    def test_no_preemption_without_interactive_arrivals(self, graph):
        service = _service(graph, preemption=True)
        bulk = service.submit(QueryRequest("pagerank", priority=Priority.BULK))
        other = service.submit(QueryRequest("pagerank", priority=Priority.BULK))
        service.drain()
        assert bulk.preemptions == 0 and other.preemptions == 0
        assert service.stats().preemptions == 0

    def test_preempted_handle_requeues_with_reservation(self, graph):
        service = _service(graph, preemption=True)
        solo = service.system.run(make_algorithm("pagerank"))
        bulk = service.submit(QueryRequest("pagerank", priority=Priority.BULK))
        service.submit(
            QueryRequest(
                "bfs", source=0, priority=Priority.INTERACTIVE,
                arrival_s=solo.total_time * 0.3,
            )
        )
        batch = service.step()
        assert batch.extra.get("suspended"), "first wave should suspend the BULK query"
        assert bulk.status is RequestStatus.QUEUED
        assert bulk._checkpoint is not None
        # Its admission reservation is still held while suspended.
        assert service.admission.pending_bytes > 0
        service.drain()
        assert bulk.status is RequestStatus.DONE
        assert bulk._checkpoint is None
        assert np.array_equal(bulk.result().values, solo.values)


# ----------------------------------------------------------------------
# (4) per-class cache budgets
# ----------------------------------------------------------------------


def _manager(policy="lru", num_partitions=8, num_devices=1, budget=None):
    graph = rmat_graph(160, 960, seed=9, name="rmat-classes")
    partitioning = partition_by_count(graph, num_partitions)
    sharding = ShardedPartitioning(partitioning, num_devices)
    config = HardwareConfig(gpu_memory_bytes=graph.edge_data_bytes, num_devices=num_devices)
    return CacheManager(partitioning, sharding, config, policy=policy, budget_bytes=budget)


class TestClassCacheBudgets:
    def test_bulk_fills_capped_at_class_budget(self):
        manager = _manager()
        cap = int(manager.partition_bytes[:2].sum())
        manager.set_class_budgets({2.0: cap})
        manager.set_fill_class(2.0)
        manager.fill(list(range(manager.num_partitions)))
        assert manager.class_resident_bytes(2.0, 0) <= cap
        assert manager.class_resident_bytes(2.0, 0) > 0

    def test_bulk_never_evicts_better_class(self):
        graph_bytes = _manager().partition_bytes
        # Budget fits exactly the interactive working set, so any BULK
        # admission would need to evict an interactive-owned partition.
        budget = int(graph_bytes[:3].sum())
        manager = _manager(budget=budget)
        manager.set_class_budgets({2.0: budget})
        manager.set_fill_class(0.0)
        manager.fill([0, 1, 2])
        interactive_resident = manager.class_resident_bytes(0.0, 0)
        assert interactive_resident > 0
        manager.set_fill_class(2.0)
        manager.fill(list(range(3, manager.num_partitions)))
        # The interactive working set is untouched.
        assert manager.class_resident_bytes(0.0, 0) == interactive_resident
        assert manager.resident[:3].all()

    def test_better_class_hit_adopts_partition(self):
        manager = _manager()
        manager.set_class_budgets({2.0: int(manager.partition_bytes.sum())})
        manager.set_fill_class(2.0)
        manager.fill([0])
        assert manager.class_of[0] == 2.0
        manager.set_fill_class(0.0)
        manager.split_billable([0])  # a hit by the better class
        assert manager.class_of[0] == 0.0

    def test_no_budgets_keeps_classless_admission(self):
        classless = _manager()
        classed = _manager()
        classed.set_fill_class(1.0)  # fill context without budgets is inert
        for manager in (classless, classed):
            manager.fill(list(range(manager.num_partitions)))
        assert np.array_equal(classless.resident, classed.resident)
        assert np.all(np.isinf(classed.class_of[classed.resident]))

    def test_service_config_validates_class_budgets(self):
        config = ServiceConfig(cache_class_budgets={"bulk": 1024, "interactive": 2048})
        assert config.cache_class_budgets == {Priority.BULK: 1024, Priority.INTERACTIVE: 2048}
        with pytest.raises(ValueError, match="unknown priority"):
            ServiceConfig(cache_class_budgets={"urgent": 10})
        with pytest.raises(ValueError, match="non-negative"):
            ServiceConfig(cache_class_budgets={"bulk": -1})

    def test_service_applies_class_budgets_to_cache(self, graph):
        service = _service(
            graph,
            cache_policy="lru",
            cache_class_budgets={"bulk": 4096},
        )
        cache = service.system.context.cache
        assert cache is not None
        assert cache.class_budgets == {float(int(Priority.BULK)): 4096}


# ----------------------------------------------------------------------
# (5) replay harness
# ----------------------------------------------------------------------


class TestReplayHarness:
    def test_streamed_replay_accounts_for_every_query(self, graph):
        service = _service(graph)
        harness = ReplayHarness(service, lookahead=32)
        report = harness.replay(timed_mixed_trace(graph, 150, rate=2000.0, seed=4))
        assert report.queries == 150
        assert (
            report.completed + report.rejected + report.failed + report.cancelled
            == report.queries
        )
        assert report.completed == 150
        assert report.waves >= 1
        assert report.makespan_s > 0
        # Finished handles were harvested along the way: nothing left.
        assert service._handles == []
        assert service._queue == []

    def test_verify_sample_bitwise(self, graph):
        service = _service(graph)
        harness = ReplayHarness(service, lookahead=32, verify_sample=5, seed=9)
        report = harness.replay(timed_mixed_trace(graph, 80, rate=2000.0, seed=4))
        assert report.verified_queries == 5
        assert report.verified_bitwise is True

    def test_rejection_breakdown(self, graph):
        service = _service(graph, admission_budget_bytes=0, admission_policy="reject")
        harness = ReplayHarness(service, lookahead=16)
        report = harness.replay(timed_mixed_trace(graph, 40, rate=2000.0, seed=4))
        assert report.rejected == 40
        assert report.completed == 0
        assert sum(report.rejections_by_class.values()) == 40

    def test_preemptive_replay_counts_preemptions(self, graph):
        service = _service(graph, preemption=True)
        harness = ReplayHarness(service, lookahead=64)
        report = harness.replay(
            timed_mixed_trace(
                graph, 200, rate=4000.0, seed=6,
                interactive_fraction=0.75, bulk_fraction=0.15,
            )
        )
        assert report.completed == 200
        assert report.preemptions > 0
        assert report.preempted_queries > 0

    def test_report_is_json_serializable(self, graph):
        service = _service(graph)
        harness = ReplayHarness(service, lookahead=16)
        report = harness.replay(timed_mixed_trace(graph, 30, rate=1000.0, seed=1))
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["queries"] == 30
        assert "interactive" in payload["classes"] or "standard" in payload["classes"]

    def test_validation(self, graph):
        service = _service(graph)
        with pytest.raises(ValueError, match="lookahead"):
            ReplayHarness(service, lookahead=0)
        with pytest.raises(ValueError, match="verify_sample"):
            ReplayHarness(service, verify_sample=-1)
