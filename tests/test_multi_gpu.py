"""Tests of the multi-GPU sharded execution layer.

Three guarantees anchor the layer:

1. ``num_devices=1`` is a pure dispatch — single-device runs are bitwise
   identical to the original engine for all five algorithms and every
   system that grew a multi-device path.
2. On a transfer-bound workload, adding devices never increases the
   simulated makespan: shard residency converts aggregate device memory
   into skipped transfers, which outweighs the boundary-sync overhead.
3. The boundary-vertex synchronisation accounting is exact — checked
   against a hand-computed BFS on the paper's Figure 1 graph.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bfs import BFS
from repro.algorithms.pagerank import DeltaPageRank
from repro.algorithms.sssp import SSSP
from repro.graph.generators import rmat_graph, uniform_random_graph
from repro.graph.partition import ShardedPartitioning, partition_by_count
from repro.runtime.context import MultiDeviceScheduler
from repro.sim.config import INTERCONNECT_PRESETS, HardwareConfig
from repro.sim.streams import StreamTask
from repro.systems.emogi import EmogiSystem
from repro.systems.hytgraph import HyTGraphSystem

# The (algorithm, system, device-count) grid is shared with the
# bitwise-equivalence fixture generator so the two suites cannot drift.
from tests.data.generate_runtime_equivalence import ALGORITHMS as _ALGORITHM_GRID
from tests.data.generate_runtime_equivalence import SYSTEMS as _SYSTEM_GRID

ALL_ALGORITHMS = _ALGORITHM_GRID
MULTI_SYSTEMS = [system_cls for _, system_cls in _SYSTEM_GRID]


def _run(system_cls, graph, config, algorithm_cls, source):
    system = system_cls(graph, config=config)
    kwargs = {} if source is None else {"source": source}
    return system.run(algorithm_cls(), **kwargs)


# ----------------------------------------------------------------------
# (a) num_devices=1 is bitwise identical to the original engine
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name,algorithm_cls,source", ALL_ALGORITHMS)
@pytest.mark.parametrize("system_cls", MULTI_SYSTEMS)
def test_single_device_bitwise_identical(name, algorithm_cls, source, system_cls):
    graph = rmat_graph(600, 4800, seed=13, weighted=True, name="rmat")
    plain = HardwareConfig(gpu_memory_bytes=graph.edge_data_bytes // 2)
    explicit = plain.with_devices(1)

    baseline = _run(system_cls, graph, plain, algorithm_cls, source)
    single = _run(system_cls, graph, explicit, algorithm_cls, source)

    assert np.array_equal(np.asarray(baseline.values), np.asarray(single.values))
    assert baseline.per_iteration_times() == single.per_iteration_times()
    assert baseline.total_transfer_bytes == single.total_transfer_bytes
    assert single.total_interconnect_bytes == 0
    assert single.total_sync_time == 0.0


def test_single_device_is_the_trivial_sharded_case():
    # One device is not a separate code path: the context holds one
    # shard spanning every partition, no residency and no sync overhead.
    graph = rmat_graph(200, 1000, seed=3)
    system = HyTGraphSystem(graph, config=HardwareConfig())
    context = system.engine.context
    assert system.context is context
    assert not context.is_multi_device
    assert context.sharding.num_devices == 1
    shard = context.sharding[0]
    assert (shard.vertex_start, shard.vertex_end) == (0, graph.num_vertices)
    assert shard.num_partitions == system.engine.partitioning.num_partitions
    assert context.residency is None
    assert context.num_resident_partitions == 0


def test_systems_without_multi_device_path_refuse_devices():
    from repro.systems.grus import GrusSystem

    graph = rmat_graph(200, 1000, seed=3)
    with pytest.raises(ValueError, match="no multi-device execution path"):
        GrusSystem(graph, config=HardwareConfig().with_devices(2))


# ----------------------------------------------------------------------
# (b) makespan never increases 1 -> 2 devices on a transfer-bound workload
# ----------------------------------------------------------------------


def test_makespan_non_increasing_on_transfer_bound_workload():
    # PCIe is throttled far below the kernel's edge throughput, and one
    # device's memory holds only half the edge data: the workload is
    # dominated by host-to-device transfers.  Sharding across 2 (and 4)
    # devices makes the whole graph shard-resident, so the repeated
    # transfers disappear and the makespan must not grow despite the
    # per-iteration boundary synchronisation.
    graph = rmat_graph(2000, 20000, seed=5, name="rmat")
    base = HardwareConfig(gpu_memory_bytes=graph.edge_data_bytes // 2, pcie_bandwidth=1e9)

    single = _run(HyTGraphSystem, graph, base, DeltaPageRank, None)
    dual = _run(HyTGraphSystem, graph, base.with_devices(2), DeltaPageRank, None)
    quad = _run(HyTGraphSystem, graph, base.with_devices(4), DeltaPageRank, None)

    assert dual.total_time <= single.total_time
    assert quad.total_time <= single.total_time
    # The win comes from skipped transfers, not from accounting holes.
    assert dual.total_transfer_bytes < single.total_transfer_bytes
    assert dual.total_interconnect_bytes > 0
    assert dual.converged and quad.converged


def test_shard_residency_reported():
    graph = rmat_graph(2000, 20000, seed=5, name="rmat")
    base = HardwareConfig(gpu_memory_bytes=graph.edge_data_bytes // 2, pcie_bandwidth=1e9)
    system = HyTGraphSystem(graph, config=base.with_devices(2))
    result = system.run(DeltaPageRank())
    assert result.extra["num_devices"] == 2
    assert result.extra["interconnect"] == "nvlink"
    assert result.extra["resident_partitions"] > 0


# ----------------------------------------------------------------------
# (c) boundary-sync byte accounting on a hand-computed fixture
# ----------------------------------------------------------------------


def test_boundary_sync_bytes_hand_computed(paper_graph):
    """BFS from vertex ``a`` on the Figure 1 graph, 2 devices.

    ``partition_by_count(graph, 3)`` yields vertex ranges [0,2), [2,4),
    [4,6) with 4/4/2 edges; byte-balanced sharding puts partition 0 on
    device 0 and partitions 1-2 on device 1, so device 0 owns vertices
    {a,b} and device 1 owns {c,d,e,f}.

    * Iteration 0 processes {a}; it activates b (local) and c (remote)
      -> 1 delta message = 12 bytes (8-byte index entry + 4-byte value).
    * Iteration 1: device 0 processes {b} first: dist(c) cannot improve,
      dist(d) does -> d is remote -> 1 message.  Device 1 then processes
      {c}: dist(d) is already 2 (global values), dist(e) improves but e
      is local -> 0 messages.  Total 12 bytes.
    * Iterations 2 and 3 only activate vertices inside device 1's shard
      -> 0 bytes, but the sync barrier latency is still charged.
    """
    config = HardwareConfig().with_devices(2)
    system = EmogiSystem(paper_graph, config=config, num_partitions=3)

    sharding = system.sharding
    assert [(shard.vertex_start, shard.vertex_end) for shard in sharding] == [(0, 2), (2, 6)]

    result = system.run(BFS(), source=0)
    assert result.converged
    np.testing.assert_array_equal(result.values, [0.0, 1.0, 1.0, 2.0, 2.0, 3.0])

    per_update = config.boundary_update_bytes
    assert per_update == 12
    assert [stats.interconnect_bytes for stats in result.iterations] == [12, 12, 0, 0]

    bandwidth = config.interconnect_bandwidth
    latency = config.interconnect_latency
    expected_sync = [latency + 12 / bandwidth, latency + 12 / bandwidth, latency, latency]
    assert np.allclose([stats.sync_time for stats in result.iterations], expected_sync)
    assert result.total_interconnect_bytes == 24


# ----------------------------------------------------------------------
# Sharding and scheduler building blocks
# ----------------------------------------------------------------------


def test_sharded_partitioning_tiles_and_balances():
    graph = uniform_random_graph(500, 4000, seed=9)
    partitioning = partition_by_count(graph, 16)
    sharding = ShardedPartitioning(partitioning, 4)

    assert sharding.num_devices == 4
    assert sharding[0].vertex_start == 0
    assert sharding[-1].vertex_end == graph.num_vertices
    for left, right in zip(sharding.shards, sharding.shards[1:]):
        assert left.vertex_end == right.vertex_start
        assert left.partition_end == right.partition_start

    vertices = np.arange(graph.num_vertices)
    devices = sharding.device_of_vertices(vertices)
    for shard in sharding:
        np.testing.assert_array_equal(
            devices[shard.vertex_start : shard.vertex_end], shard.device
        )
    split = sharding.split_sorted_vertices(vertices)
    assert sum(part.size for part in split) == graph.num_vertices

    # Byte balance: no shard exceeds its fair share by more than the
    # largest single partition (contiguity makes that the bound).
    per_partition = partitioning.bytes_per_partition()
    fair = per_partition.sum() / 4
    for shard in sharding:
        assert shard.edge_bytes <= fair + per_partition.max()


def test_more_devices_than_partitions():
    graph = uniform_random_graph(60, 300, seed=4)
    partitioning = partition_by_count(graph, 2)
    sharding = ShardedPartitioning(partitioning, 4)
    assert sum(shard.num_partitions for shard in sharding) == 2
    assert sum(shard.num_partitions == 0 for shard in sharding) == 2
    assert sum(shard.num_vertices for shard in sharding) == graph.num_vertices
    # Empty shards still resolve vertex ownership to a real shard.
    devices = sharding.device_of_vertices(np.arange(graph.num_vertices))
    assert devices.max() < 4

    config = HardwareConfig().with_devices(4)
    system = EmogiSystem(graph, config=config, num_partitions=2)
    result = system.run(DeltaPageRank())
    assert result.converged


def test_multi_device_scheduler_shares_host_pcie():
    config = HardwareConfig(num_streams=2).with_devices(2)
    scheduler = MultiDeviceScheduler(config)
    transfer = StreamTask(name="t", engine="ExpTM-F", transfer_time=1.0, kernel_time=0.5)
    timeline = scheduler.schedule([[transfer], [transfer]], [0, 0])

    # Both transfers serialise on the one host PCIe resource...
    pcie_spans = sorted(
        (span.start, span.end)
        for entry in timeline.entries
        for span in entry.spans
        if span.resource == "pcie"
    )
    assert pcie_spans == [(0.0, 1.0), (1.0, 2.0)]
    # ...while the kernels run on separate per-device GPUs.
    gpu_entries = {entry.device for entry in timeline.entries if entry.time_on("gpu") > 0}
    assert gpu_entries == {0, 1}
    # The boundary sync is the last thing in the iteration.
    sync_entry = timeline.entries[-1]
    assert sync_entry.engine == "sync"
    assert sync_entry.start == pytest.approx(2.5)
    assert timeline.sync_time == pytest.approx(config.interconnect_latency)


def test_interconnect_presets_and_validation():
    config = HardwareConfig().with_devices(2, "pcie-peer")
    bandwidth, latency = INTERCONNECT_PRESETS["pcie-peer"]
    assert config.interconnect_bandwidth == bandwidth
    assert config.interconnect_latency == latency
    assert config.is_multi_device

    with pytest.raises(KeyError):
        HardwareConfig().with_devices(2, "smoke-signals")
    with pytest.raises(ValueError):
        HardwareConfig(num_devices=0)
    with pytest.raises(ValueError):
        HardwareConfig().with_devices(0)


@pytest.mark.parametrize("system_cls", MULTI_SYSTEMS)
def test_multi_device_runs_converge_to_reference(system_cls):
    graph = rmat_graph(400, 3000, seed=21, weighted=True, name="rmat")
    config = HardwareConfig(gpu_memory_bytes=graph.edge_data_bytes // 3).with_devices(2)
    single = _run(system_cls, graph, HardwareConfig(gpu_memory_bytes=graph.edge_data_bytes // 3),
                  SSSP, 0)
    multi = _run(system_cls, graph, config, SSSP, 0)
    assert multi.converged
    # SSSP distances are schedule-independent at the fixed point.
    np.testing.assert_allclose(np.asarray(multi.values), np.asarray(single.values))
