"""Regenerate the unified-runtime equivalence fixture.

The fixture pins the exact behaviour of the execution layer — per-vertex
values (as a SHA-256 of the raw array bytes), per-iteration simulated
times (as exact float hex strings), transfer and interconnect volumes —
for all five algorithms x the four multi-device-capable systems at 1, 2
and 4 devices.  It was captured from the pre-refactor twin-path code
(``run``/``_run_multi``); ``tests/test_runtime_equivalence.py`` replays
the same workloads through the unified runtime and compares bitwise.

Run from the repository root::

    python tests/data/generate_runtime_equivalence.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.algorithms.bfs import BFS
from repro.algorithms.cc import ConnectedComponents
from repro.algorithms.pagerank import DeltaPageRank
from repro.algorithms.php import PHP
from repro.algorithms.sssp import SSSP
from repro.graph.generators import rmat_graph
from repro.sim.config import HardwareConfig
from repro.systems.emogi import EmogiSystem
from repro.systems.exptm_filter import ExpTMFilterSystem
from repro.systems.hytgraph import HyTGraphSystem
from repro.systems.subway import SubwaySystem

OUTPUT = Path(__file__).resolve().parent / "runtime_equivalence.json"

ALGORITHMS = [
    ("pagerank", DeltaPageRank, None),
    ("sssp", SSSP, 0),
    ("bfs", BFS, 0),
    ("cc", ConnectedComponents, None),
    ("php", PHP, 0),
]

SYSTEMS = [
    ("hytgraph", HyTGraphSystem),
    ("emogi", EmogiSystem),
    ("subway", SubwaySystem),
    ("exptm-f", ExpTMFilterSystem),
]

DEVICE_COUNTS = [1, 2, 4]

GRAPH_SPEC = {"vertices": 600, "edges": 4800, "seed": 13, "weighted": True}


def build_graph():
    return rmat_graph(
        GRAPH_SPEC["vertices"],
        GRAPH_SPEC["edges"],
        seed=GRAPH_SPEC["seed"],
        weighted=GRAPH_SPEC["weighted"],
        name="rmat-equivalence",
    )


def fingerprint(result) -> dict:
    values = np.ascontiguousarray(np.asarray(result.values))
    return {
        "values_sha256": hashlib.sha256(values.tobytes()).hexdigest(),
        "values_dtype": str(values.dtype),
        "values_shape": list(values.shape),
        "iteration_times_hex": [float(s.time).hex() for s in result.iterations],
        "total_transfer_bytes": int(result.total_transfer_bytes),
        "total_interconnect_bytes": int(result.total_interconnect_bytes),
        "num_iterations": int(result.num_iterations),
        "converged": bool(result.converged),
    }


def main() -> None:
    graph = build_graph()
    base = HardwareConfig(gpu_memory_bytes=graph.edge_data_bytes // 2)
    cases = {}
    for system_key, system_cls in SYSTEMS:
        for algorithm_key, algorithm_cls, source in ALGORITHMS:
            for devices in DEVICE_COUNTS:
                config = base.with_devices(devices)
                system = system_cls(graph, config=config)
                kwargs = {} if source is None else {"source": source}
                result = system.run(algorithm_cls(), **kwargs)
                cases["%s/%s/%ddev" % (system_key, algorithm_key, devices)] = fingerprint(result)
                print("captured %s/%s at %d device(s)" % (system_key, algorithm_key, devices))
    payload = {
        "graph": GRAPH_SPEC,
        "gpu_memory": "edge_data_bytes // 2",
        "device_counts": DEVICE_COUNTS,
        "cases": cases,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print("wrote %s (%d cases)" % (OUTPUT, len(cases)))


if __name__ == "__main__":
    main()
