"""Unit tests for the hardware configuration presets."""

import pytest

from repro.sim.config import (
    GPU_PRESETS,
    HardwareConfig,
    a100,
    default_config,
    gtx_1080,
    gtx_2080ti,
    h100,
    tesla_p100,
    tesla_v100,
)


class TestDerivedQuantities:
    def test_tlp_payload(self):
        config = HardwareConfig()
        assert config.tlp_payload_bytes == 256 * 128

    def test_rtt_matches_bandwidth(self):
        config = HardwareConfig()
        assert config.tlp_round_trip_time == pytest.approx(256 * 128 / config.pcie_bandwidth)

    def test_um_bandwidth_fraction(self):
        config = HardwareConfig()
        assert config.um_bandwidth == pytest.approx(config.pcie_bandwidth * config.um_peak_fraction)

    def test_table1_bandwidth_gap(self):
        # Table I: the GPU-memory-vs-PCIe gap stays enormous (~45-50x with
        # theoretical PCIe bandwidth, a bit higher with the practical
        # bandwidth the presets use) across generations.
        for preset in (tesla_p100(), tesla_v100(), a100(), h100()):
            assert 30 <= preset.memory_bandwidth_ratio <= 80

    def test_2080ti_is_default(self):
        assert default_config().name == gtx_2080ti().name


class TestValidation:
    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            HardwareConfig(zero_copy_gamma=1.5)

    def test_invalid_request_bytes(self):
        with pytest.raises(ValueError):
            HardwareConfig(pcie_request_bytes=0)

    def test_invalid_um_fraction(self):
        with pytest.raises(ValueError):
            HardwareConfig(um_peak_fraction=0.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            HardwareConfig(pcie_bandwidth=-1)


class TestAdjustedCopies:
    def test_with_gpu_memory(self):
        config = HardwareConfig().with_gpu_memory(123)
        assert config.gpu_memory_bytes == 123

    def test_scaled_memory(self):
        base = HardwareConfig()
        scaled = base.scaled_memory(0.5)
        assert scaled.gpu_memory_bytes == base.gpu_memory_bytes // 2
        assert scaled.pcie_bandwidth == base.pcie_bandwidth

    def test_scaled_also_scales_launch_overhead(self):
        base = HardwareConfig()
        scaled = base.scaled(0.01)
        assert scaled.gpu_kernel_launch_overhead == pytest.approx(base.gpu_kernel_launch_overhead * 0.01)
        assert scaled.pcie_request_bytes == base.pcie_request_bytes

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            HardwareConfig().scaled(0)

    def test_with_streams(self):
        assert HardwareConfig().with_streams(2).num_streams == 2
        with pytest.raises(ValueError):
            HardwareConfig().with_streams(0)

    def test_original_unchanged(self):
        base = HardwareConfig()
        base.with_gpu_memory(1)
        assert base.gpu_memory_bytes != 1


class TestPresets:
    def test_all_presets_present(self):
        assert {"GTX-1080", "GTX-2080Ti", "P100", "V100", "A100", "H100"} <= set(GPU_PRESETS)

    def test_memory_ordering_matches_table1(self):
        assert gtx_1080().gpu_memory_bytes < gtx_2080ti().gpu_memory_bytes < tesla_p100().gpu_memory_bytes
        assert a100().gpu_memory_bytes < h100().gpu_memory_bytes

    def test_newer_gpus_have_faster_pcie(self):
        assert a100().pcie_bandwidth > gtx_2080ti().pcie_bandwidth
        assert h100().pcie_bandwidth > a100().pcie_bandwidth


class TestNetworkConfig:
    def test_presets_cover_the_fabric_tiers(self):
        from repro.sim.config import NETWORK_PRESETS, NetworkConfig

        assert set(NETWORK_PRESETS) == {"rdma", "tcp", "ethernet-10g"}
        rdma = NetworkConfig.from_preset("rdma")
        tcp = NetworkConfig.from_preset("tcp")
        ten_g = NetworkConfig.from_preset("ethernet-10g")
        # Bandwidth ordering: rdma > tcp > 10GbE; rdma also wins latency.
        assert rdma.bandwidth > tcp.bandwidth > ten_g.bandwidth
        assert rdma.latency < min(tcp.latency, ten_g.latency)

    def test_preset_lookup_is_case_insensitive_and_typed(self):
        from repro.sim.config import NetworkConfig

        assert NetworkConfig.from_preset(" RDMA ").kind == "rdma"
        with pytest.raises(KeyError, match="unknown network preset"):
            NetworkConfig.from_preset("smoke-signals")

    def test_transfer_seconds_bills_latency_plus_bytes(self):
        from repro.sim.config import NetworkConfig

        link = NetworkConfig(kind="lab", bandwidth=1e9, latency=1e-3)
        assert link.transfer_seconds(0) == 1e-3
        assert link.transfer_seconds(10**9) == pytest.approx(1.001)
        with pytest.raises(ValueError, match="non-negative"):
            link.transfer_seconds(-1)

    def test_scaled_shrinks_latency_only(self):
        from repro.sim.config import NetworkConfig

        link = NetworkConfig.from_preset("tcp").scaled(0.05)
        assert link.latency == pytest.approx(50e-6 * 0.05)
        assert link.bandwidth == NetworkConfig.from_preset("tcp").bandwidth
        with pytest.raises(ValueError, match="positive"):
            link.scaled(0.0)

    def test_validation(self):
        from repro.sim.config import NetworkConfig

        with pytest.raises(ValueError, match="bandwidth"):
            NetworkConfig(bandwidth=0.0)
        with pytest.raises(ValueError, match="latency"):
            NetworkConfig(latency=-1e-6)


class TestHostConfig:
    def test_defaults_and_total_gpus(self):
        from repro.sim.config import HostConfig

        topology = HostConfig(hosts=4, gpus_per_host=2)
        assert topology.total_gpus == 8
        assert topology.network.kind == "tcp"

    def test_network_coercion(self):
        from repro.sim.config import HostConfig, NetworkConfig

        assert HostConfig(network="rdma").network == NetworkConfig.from_preset("rdma")
        custom = NetworkConfig(kind="lab", bandwidth=1e9, latency=1e-4)
        assert HostConfig(network=custom).network is custom

    def test_validation(self):
        from repro.sim.config import HostConfig

        with pytest.raises(ValueError, match="hosts"):
            HostConfig(hosts=0)
        with pytest.raises(ValueError, match="gpus_per_host"):
            HostConfig(gpus_per_host=0)

    def test_scaled_scales_the_network(self):
        from repro.sim.config import HostConfig

        topology = HostConfig(hosts=2, network="tcp").scaled(0.1)
        assert topology.hosts == 2
        assert topology.network.latency == pytest.approx(50e-6 * 0.1)
