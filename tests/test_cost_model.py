"""Unit tests for the Formula 1-3 cost model."""

import numpy as np
import pytest

from repro.core.cost_model import CostModel
from repro.graph.csr import CSRGraph
from repro.graph.partition import partition_by_count


@pytest.fixture
def graph(medium_power_law_graph):
    return medium_power_law_graph


@pytest.fixture
def partitioning(graph):
    return partition_by_count(graph, 8)


@pytest.fixture
def cost_model(graph, partitioning, config):
    return CostModel(graph, partitioning, config)


class TestFilterCost:
    def test_formula_1_by_hand(self, graph, partitioning, cost_model, config):
        partition = partitioning[0]
        num_bytes = partition.num_edges * graph.edge_bytes_per_edge
        expected_tlps = int(np.ceil(num_bytes / config.tlp_payload_bytes))
        assert cost_model.filter_cost(0) == pytest.approx(expected_tlps * config.tlp_round_trip_time)

    def test_independent_of_activeness(self, cost_model, graph, partitioning):
        mask_few = np.zeros(graph.num_vertices, dtype=bool)
        mask_few[partitioning[0].vertex_start] = True
        mask_many = np.zeros(graph.num_vertices, dtype=bool)
        mask_many[partitioning[0].vertex_start : partitioning[0].vertex_end] = True
        few = cost_model.estimate(mask_few)
        many = cost_model.estimate(mask_many)
        if few.active_edges[0] > 0 and many.active_edges[0] > 0:
            assert few.filter_cost[0] == pytest.approx(many.filter_cost[0])


class TestCompactionCost:
    def test_formula_2_transfer_term(self, cost_model, config, graph):
        active_edges, active_vertices = 1000, 50
        num_bytes = active_edges * graph.edge_bytes_per_edge + active_vertices * config.index_entry_bytes
        expected_tlps = int(np.ceil(num_bytes / config.tlp_payload_bytes))
        assert cost_model.compaction_cost(active_edges, active_vertices) == pytest.approx(
            expected_tlps * config.tlp_round_trip_time
        )

    def test_grows_with_active_edges(self, cost_model):
        assert cost_model.compaction_cost(200_000, 10) > cost_model.compaction_cost(1_000, 10)


class TestZeroCopyCost:
    def test_zero_for_empty(self, cost_model):
        assert cost_model.zero_copy_cost(np.array([], dtype=np.int64), 0) == 0.0

    def test_low_degree_actives_cost_more_than_high_degree(self, config):
        # The Figure 4 example: same active edge count, different active
        # vertex counts -> different zero-copy cost.
        adjacency = {}
        vertex = 0
        # 6 vertices with ~10 neighbors each vs 2 vertices with 30 each.
        for _ in range(6):
            adjacency[vertex] = [(vertex + offset) % 100 + 40 for offset in range(10)]
            vertex += 1
        for _ in range(2):
            adjacency[vertex] = [(vertex + offset) % 100 + 40 for offset in range(30)]
            vertex += 1
        graph = CSRGraph.from_adjacency(adjacency, num_vertices=140)
        partitioning = partition_by_count(graph, 1)
        model = CostModel(graph, partitioning, config)
        many_vertices = model.zero_copy_cost(np.arange(0, 6), 0)
        few_vertices = model.zero_copy_cost(np.arange(6, 8), 0)
        assert many_vertices >= few_vertices


class TestEstimate:
    def test_shapes(self, cost_model, graph, partitioning):
        mask = np.zeros(graph.num_vertices, dtype=bool)
        mask[::3] = True
        costs = cost_model.estimate(mask)
        assert costs.num_partitions == partitioning.num_partitions
        for array in (costs.filter_cost, costs.compaction_cost, costs.zero_copy_cost):
            assert array.shape == (partitioning.num_partitions,)
            assert np.all(array >= 0)

    def test_inactive_partitions_cost_nothing(self, cost_model, graph, partitioning):
        mask = np.zeros(graph.num_vertices, dtype=bool)
        partition = partitioning[2]
        mask[partition.vertex_start : partition.vertex_end] = True
        costs = cost_model.estimate(mask)
        for index in range(partitioning.num_partitions):
            if index != 2 and costs.active_edges[index] == 0:
                assert costs.filter_cost[index] == 0.0
                assert costs.compaction_cost[index] == 0.0
                assert costs.zero_copy_cost[index] == 0.0

    def test_active_partitions_helper(self, cost_model, graph, partitioning):
        mask = np.zeros(graph.num_vertices, dtype=bool)
        partition = partitioning[1]
        vertices = np.arange(partition.vertex_start, partition.vertex_end)
        vertices = vertices[graph.out_degrees[vertices] > 0]
        mask[vertices] = True
        costs = cost_model.estimate(mask)
        assert 1 in costs.active_partitions()

    def test_all_active_compaction_near_filter(self, cost_model, graph):
        # With every edge active, compaction saves nothing: its transfer
        # term is at least the filter cost (plus the index array).
        mask = np.ones(graph.num_vertices, dtype=bool)
        costs = cost_model.estimate(mask)
        active = costs.active_partitions()
        assert np.all(costs.compaction_cost[active] >= costs.filter_cost[active] * 0.99)

    def test_sparse_active_compaction_cheaper_than_filter(self, cost_model, graph):
        mask = np.zeros(graph.num_vertices, dtype=bool)
        mask[::50] = True
        costs = cost_model.estimate(mask)
        active = costs.active_partitions()
        assert np.all(costs.compaction_cost[active] <= costs.filter_cost[active] + 1e-12)

    def test_zero_copy_cheaper_than_filter_when_sparse(self, cost_model, graph):
        mask = np.zeros(graph.num_vertices, dtype=bool)
        mask[::97] = True
        costs = cost_model.estimate(mask)
        active = costs.active_partitions()
        # With a handful of active vertices per partition, on-demand access
        # beats shipping whole partitions.
        assert costs.zero_copy_cost[active].sum() < costs.filter_cost[active].sum()

    def test_per_partition_zero_copy_matches_single_method(self, cost_model, graph, partitioning):
        mask = np.zeros(graph.num_vertices, dtype=bool)
        partition = partitioning[3]
        vertices = np.arange(partition.vertex_start, partition.vertex_end, 4)
        mask[vertices] = True
        costs = cost_model.estimate(mask)
        direct = cost_model.zero_copy_cost(vertices, 3)
        assert costs.zero_copy_cost[3] == pytest.approx(direct, rel=1e-9)
