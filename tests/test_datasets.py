"""Unit tests for the Table IV dataset stand-ins."""

import pytest

from repro.graph.datasets import DATASETS, DatasetSpec, dataset_names, load_dataset


class TestSpecs:
    def test_all_five_datasets_present(self):
        assert set(dataset_names()) == {"SK", "TW", "FK", "UK", "FS"}

    def test_specs_match_paper_kinds(self):
        assert DATASETS["SK"].kind == "web"
        assert DATASETS["UK"].kind == "web"
        assert DATASETS["TW"].kind == "social"
        assert DATASETS["FK"].kind == "social"
        assert DATASETS["FS"].kind == "social"

    def test_directedness(self):
        assert DATASETS["SK"].directed
        assert DATASETS["TW"].directed
        assert DATASETS["UK"].directed
        assert not DATASETS["FK"].directed
        assert not DATASETS["FS"].directed

    def test_approx_edges(self):
        spec = DatasetSpec("X", "x", "web", 1000, 10.0, True, 1)
        assert spec.approx_edges == 10000


class TestLoading:
    @pytest.mark.parametrize("name", ["SK", "TW", "FK", "UK", "FS"])
    def test_load_small_scale(self, name):
        graph = load_dataset(name, scale=0.05)
        assert graph.num_vertices > 0
        assert graph.num_edges > 0
        assert graph.name == name

    def test_aliases(self):
        by_alias = load_dataset("sk-2005", scale=0.05)
        by_name = load_dataset("SK", scale=0.05)
        assert by_alias.num_edges == by_name.num_edges

    def test_scale_changes_size(self):
        small = load_dataset("TW", scale=0.05)
        larger = load_dataset("TW", scale=0.1)
        assert larger.num_vertices > small.num_vertices

    def test_weighted(self):
        graph = load_dataset("SK", scale=0.05, weighted=True)
        assert graph.is_weighted

    def test_deterministic(self):
        first = load_dataset("FK", scale=0.05)
        second = load_dataset("FK", scale=0.05)
        assert first.num_edges == second.num_edges

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("not-a-dataset")

    def test_web_graphs_keep_degree_skew(self):
        graph = load_dataset("SK", scale=0.3)
        degrees = graph.out_degrees
        assert degrees.max() > 5 * degrees.mean()
