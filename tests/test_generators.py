"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    complete_graph,
    grid_graph,
    path_graph,
    power_law_graph,
    random_weights,
    rmat_graph,
    star_graph,
    uniform_random_graph,
)


class TestRmat:
    def test_basic_shape(self):
        graph = rmat_graph(256, 2048, seed=1)
        assert graph.num_vertices == 256
        assert 0 < graph.num_edges <= 2048

    def test_deterministic(self):
        first = rmat_graph(128, 1000, seed=5)
        second = rmat_graph(128, 1000, seed=5)
        np.testing.assert_array_equal(first.column_index, second.column_index)
        np.testing.assert_array_equal(first.row_offset, second.row_offset)

    def test_seed_changes_graph(self):
        first = rmat_graph(128, 1000, seed=5)
        second = rmat_graph(128, 1000, seed=6)
        assert first.num_edges != second.num_edges or not np.array_equal(
            first.column_index, second.column_index
        )

    def test_no_self_loops(self):
        graph = rmat_graph(64, 600, seed=2)
        for src, dst, _ in graph.iter_edges():
            assert src != dst

    def test_skewed_degrees(self):
        graph = rmat_graph(512, 8000, seed=3)
        degrees = graph.out_degrees
        assert degrees.max() > 4 * degrees.mean()

    def test_weighted(self):
        graph = rmat_graph(64, 400, seed=4, weighted=True)
        assert graph.is_weighted
        assert graph.edge_value.min() >= 1.0

    def test_empty(self):
        graph = rmat_graph(0, 0)
        assert graph.num_vertices == 0

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat_graph(16, 32, a=0.6, b=0.3, c=0.3)


class TestPowerLaw:
    def test_average_degree_close_to_target(self):
        graph = power_law_graph(2000, 16.0, seed=7)
        assert graph.average_degree == pytest.approx(16.0, rel=0.35)

    def test_heavy_tail(self):
        graph = power_law_graph(2000, 20.0, exponent=2.0, seed=8)
        degrees = graph.out_degrees
        # Hubs exist and a long low-degree tail exists.
        assert degrees.max() > 10 * degrees.mean()
        assert np.count_nonzero(degrees < 8) > 0.25 * degrees.size

    def test_undirected_is_symmetric(self):
        graph = power_law_graph(300, 8.0, seed=9, directed=False)
        edges = {(src, dst) for src, dst, _ in graph.iter_edges()}
        assert all((dst, src) in edges for src, dst in edges)

    def test_deterministic(self):
        first = power_law_graph(200, 6.0, seed=10)
        second = power_law_graph(200, 6.0, seed=10)
        np.testing.assert_array_equal(first.column_index, second.column_index)

    def test_weighted(self):
        graph = power_law_graph(100, 5.0, seed=11, weighted=True)
        assert graph.is_weighted

    def test_empty(self):
        assert power_law_graph(0, 5.0).num_vertices == 0


class TestUniformRandom:
    def test_shape(self):
        graph = uniform_random_graph(100, 500, seed=1)
        assert graph.num_vertices == 100
        assert 0 < graph.num_edges <= 500

    def test_no_self_loops(self):
        graph = uniform_random_graph(50, 300, seed=2)
        for src, dst, _ in graph.iter_edges():
            assert src != dst

    def test_empty(self):
        assert uniform_random_graph(0, 10).num_vertices == 0


class TestStructuredGraphs:
    def test_grid(self):
        graph = grid_graph(4, 5)
        assert graph.num_vertices == 20
        # Interior vertices have degree 4, corners 2.
        assert graph.out_degrees.max() == 4
        assert graph.out_degrees.min() == 2
        # Symmetric by construction.
        np.testing.assert_array_equal(graph.out_degrees, graph.in_degrees)

    def test_path(self):
        graph = path_graph(10)
        assert graph.num_vertices == 10
        assert graph.num_edges == 9
        assert graph.out_degree(9) == 0

    def test_star(self):
        graph = star_graph(7)
        assert graph.num_vertices == 8
        assert graph.out_degree(0) == 7
        assert graph.out_degrees[1:].sum() == 0

    def test_complete(self):
        graph = complete_graph(5)
        assert graph.num_edges == 20
        assert np.all(graph.out_degrees == 4)

    def test_weighted_variants(self):
        assert grid_graph(3, 3, weighted=True).is_weighted
        assert path_graph(5, weighted=True).is_weighted
        assert star_graph(4, weighted=True).is_weighted
        assert complete_graph(4, weighted=True).is_weighted


class TestRandomWeights:
    def test_range_and_dtype(self):
        weights = random_weights(1000, low=1, high=64, seed=1)
        assert weights.min() >= 1
        assert weights.max() <= 64
        assert weights.dtype == np.float64

    def test_deterministic(self):
        np.testing.assert_array_equal(random_weights(100, seed=3), random_weights(100, seed=3))
