"""Thin setuptools shim.

The project is configured through ``pyproject.toml``; this file only
exists so that ``python setup.py develop`` works in offline environments
where the ``wheel`` package (required by PEP 660 editable installs) is not
available.
"""

from setuptools import setup

setup()
